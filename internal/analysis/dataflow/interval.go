package dataflow

import (
	"fmt"
	"math/bits"

	"gallium/internal/ir"
	"gallium/internal/packet"
)

// Interval is an inclusive unsigned value range [Lo, Hi].
type Interval struct {
	Lo, Hi uint64
}

// full returns the complete range of a type.
func full(t ir.Type) Interval { return Interval{0, t.Mask()} }

// singleton reports whether the interval holds exactly one value.
func (iv Interval) singleton() bool { return iv.Lo == iv.Hi }

// String renders "[lo, hi]" (or "v" for singletons).
func (iv Interval) String() string {
	if iv.singleton() {
		return fmt.Sprintf("%d", iv.Lo)
	}
	return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi)
}

func joinInterval(a, b Interval) Interval {
	return Interval{Lo: min64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi)}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Truncation is one header write whose value range provably can exceed
// the field's width on a reachable path — bits would be dropped on the
// wire.
type Truncation struct {
	// Stmt and Line locate the StoreHeader.
	Stmt, Line int
	// Field is the header field written; FieldBits its width.
	Field     string
	FieldBits int
	// Val is the stored register's interval at the store.
	Val Interval
	// Why is the derivation chain for the diagnostic.
	Why []string
}

// IntervalResult is the interval analysis output: the reachable
// truncations plus the proven range of every reachable header write
// (width facts for the placement layer).
type IntervalResult struct {
	Truncations []Truncation
	// StoreRanges maps StoreHeader statement ID → the stored value's
	// interval. Only reachable stores appear.
	StoreRanges map[int]Interval
}

// ivState is the lattice state: one interval per register. A nil state
// is bottom (block not yet reached / path infeasible).
type ivState struct {
	regs []Interval
}

func (s *ivState) clone() *ivState {
	return &ivState{regs: append([]Interval(nil), s.regs...)}
}

type ivProblem struct {
	fn *ir.Function
}

func (p *ivProblem) Direction() Direction     { return Forward }
func (p *ivProblem) Bottom() *ivState         { return nil }
func (p *ivProblem) IsBottom(s *ivState) bool { return s == nil }

func (p *ivProblem) Boundary() *ivState {
	s := &ivState{regs: make([]Interval, len(p.fn.Regs))}
	for i := range s.regs {
		// Registers are masked to their declared type on every write (see
		// ir.execInstr); before any write the value is unconstrained
		// within the type.
		s.regs[i] = full(p.fn.RegType(ir.Reg(i)))
	}
	return s
}

func (p *ivProblem) Join(a, b *ivState) *ivState {
	j := a.clone()
	for i := range j.regs {
		j.regs[i] = joinInterval(j.regs[i], b.regs[i])
	}
	return j
}

func (p *ivProblem) Equal(a, b *ivState) bool {
	for i := range a.regs {
		if a.regs[i] != b.regs[i] {
			return false
		}
	}
	return true
}

// Widen jumps any still-growing register to its full type range, so
// loops over counters terminate after a bounded number of rounds.
func (p *ivProblem) Widen(prev, next *ivState) *ivState {
	w := next.clone()
	for i := range w.regs {
		if w.regs[i].Lo < prev.regs[i].Lo || w.regs[i].Hi > prev.regs[i].Hi {
			w.regs[i] = full(p.fn.RegType(ir.Reg(i)))
		}
	}
	return w
}

func (p *ivProblem) Transfer(b *ir.Block, in *ivState) *ivState {
	s := in.clone()
	for i := range b.Instrs {
		ivStep(p.fn, s, &b.Instrs[i])
	}
	return s
}

// FlowEdge sharpens the out-state of a Branch block along one edge
// using the branch condition's defining comparison. Returns nil
// (bottom) when the edge is provably infeasible.
func (p *ivProblem) FlowEdge(from *ir.Block, to int, out *ivState) *ivState {
	if from.Term.Kind != ir.Branch || from.Term.Then == from.Term.Else {
		return out
	}
	cond, taken := from.Term.Args[0], to == from.Term.Then
	// The front end lowers conditions immediately before the Branch, so
	// scan this block backwards for the condition's definition; follow
	// one Not. Missing or foreign defs simply skip refinement.
	var def *ir.Instr
	for i := len(from.Instrs) - 1; i >= 0; i-- {
		in := &from.Instrs[i]
		if len(in.Dst) > 0 && in.Dst[0] == cond {
			if in.Kind == ir.Not {
				taken = !taken
				cond = in.Args[0]
				continue
			}
			def = in
			break
		}
	}
	if def == nil || def.Kind != ir.BinOp || !def.Op.IsComparison() {
		return out
	}
	op := def.Op
	if !taken {
		op = negateCmp(op)
	}
	a, b := def.Args[0], def.Args[1]
	x, y, feasible := refineCmp(op, out.regs[a], out.regs[b])
	if !feasible {
		return nil
	}
	s := out.clone()
	s.regs[a], s.regs[b] = x, y
	return s
}

// negateCmp returns the comparison that holds on the not-taken edge.
func negateCmp(op ir.Op) ir.Op {
	switch op {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Lt:
		return ir.Ge
	case ir.Le:
		return ir.Gt
	case ir.Gt:
		return ir.Le
	case ir.Ge:
		return ir.Lt
	}
	return op
}

// refineCmp narrows the operand intervals of a comparison known to be
// true. feasible=false means no value pair satisfies it — the edge is
// dead.
func refineCmp(op ir.Op, x, y Interval) (rx, ry Interval, feasible bool) {
	switch op {
	case ir.Eq:
		lo, hi := max64(x.Lo, y.Lo), min64(x.Hi, y.Hi)
		if lo > hi {
			return x, y, false
		}
		m := Interval{lo, hi}
		return m, m, true
	case ir.Ne:
		if x.singleton() && y.singleton() && x.Lo == y.Lo {
			return x, y, false
		}
		if y.singleton() {
			if x.Lo == y.Lo && x.Lo < x.Hi {
				x.Lo++
			}
			if x.Hi == y.Lo && x.Hi > x.Lo {
				x.Hi--
			}
		}
		if x.singleton() {
			if y.Lo == x.Lo && y.Lo < y.Hi {
				y.Lo++
			}
			if y.Hi == x.Lo && y.Hi > y.Lo {
				y.Hi--
			}
		}
		return x, y, true
	case ir.Lt: // x < y
		if y.Hi == 0 || x.Lo >= y.Hi {
			if y.Hi == 0 {
				return x, y, false
			}
		}
		x.Hi = min64(x.Hi, y.Hi-1)
		y.Lo = max64(y.Lo, x.Lo+1)
		return x, y, x.Lo <= x.Hi && y.Lo <= y.Hi
	case ir.Le: // x <= y
		x.Hi = min64(x.Hi, y.Hi)
		y.Lo = max64(y.Lo, x.Lo)
		return x, y, x.Lo <= x.Hi && y.Lo <= y.Hi
	case ir.Gt: // x > y
		if x.Hi == 0 {
			return x, y, false
		}
		y.Hi = min64(y.Hi, x.Hi-1)
		x.Lo = max64(x.Lo, y.Lo+1)
		return x, y, x.Lo <= x.Hi && y.Lo <= y.Hi
	case ir.Ge: // x >= y
		x.Lo = max64(x.Lo, y.Lo)
		y.Hi = min64(y.Hi, x.Hi)
		return x, y, x.Lo <= x.Hi && y.Lo <= y.Hi
	}
	return x, y, true
}

// ivStep applies one instruction's interval transfer to s in place,
// mirroring ir.execInstr's masking semantics: every register write is
// truncated to the register's declared type.
func ivStep(fn *ir.Function, s *ivState, in *ir.Instr) {
	setDst := func(iv Interval) {
		if len(in.Dst) == 0 || in.Dst[0] == ir.NoReg {
			return
		}
		d := in.Dst[0]
		m := fn.RegType(d).Mask()
		if iv.Hi > m {
			// The runtime masks the write; a range that crosses the mask
			// boundary wraps, so only same-side ranges stay precise.
			if iv.Lo > m && iv.Hi-iv.Lo <= m {
				iv = Interval{iv.Lo & m, iv.Hi & m}
				if iv.Lo > iv.Hi {
					iv = Interval{0, m}
				}
			} else {
				iv = Interval{0, m}
			}
		}
		s.regs[d] = iv
	}
	switch in.Kind {
	case ir.Const:
		v := in.Imm & in.Typ.Mask()
		setDst(Interval{v, v})
	case ir.BinOp:
		setDst(binOpInterval(in.Op, s.regs[in.Args[0]], s.regs[in.Args[1]]))
	case ir.Not, ir.PayloadMatch:
		setDst(Interval{0, 1})
	case ir.Convert:
		setDst(s.regs[in.Args[0]])
	case ir.LoadHeader:
		if b, ok := packet.HeaderFieldBits(in.Obj); ok {
			setDst(Interval{0, mask(b)})
		} else {
			setDst(Interval{0, ^uint64(0)})
		}
	case ir.Hash:
		setDst(full(ir.U32))
	case ir.MapFind, ir.LpmFind:
		if len(in.Dst) > 0 {
			s.regs[in.Dst[0]] = Interval{0, 1}
		}
		for _, d := range in.Dst[1:] {
			if d != ir.NoReg {
				s.regs[d] = full(fn.RegType(d))
			}
		}
	case ir.VecGet, ir.VecLen, ir.GlobalLoad, ir.XferLoad:
		for _, d := range in.Dst {
			if d != ir.NoReg {
				s.regs[d] = full(fn.RegType(d))
			}
		}
	case ir.StoreHeader, ir.MapInsert, ir.MapRemove, ir.GlobalStore, ir.XferStore:
		// No register effects.
	}
}

func mask(b int) uint64 {
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// binOpInterval is the per-operator transfer. Overflowing results fall
// back to the full range the destination mask will impose (setDst).
func binOpInterval(op ir.Op, x, y Interval) Interval {
	top := Interval{0, ^uint64(0)}
	switch op {
	case ir.Add:
		lo, c1 := bits.Add64(x.Lo, y.Lo, 0)
		hi, c2 := bits.Add64(x.Hi, y.Hi, 0)
		if c1 != 0 || c2 != 0 {
			return top
		}
		return Interval{lo, hi}
	case ir.Sub:
		if x.Lo < y.Hi {
			return top // may wrap below zero
		}
		return Interval{x.Lo - y.Hi, x.Hi - y.Lo}
	case ir.Mul:
		hiHi, hiLo := bits.Mul64(x.Hi, y.Hi)
		if hiHi != 0 {
			return top
		}
		return Interval{x.Lo * y.Lo, hiLo}
	case ir.Div:
		if y.Lo == 0 {
			// Division by zero faults at runtime; past it, any quotient.
			return top
		}
		return Interval{x.Lo / y.Hi, x.Hi / y.Lo}
	case ir.Mod:
		if y.Hi == 0 {
			return top
		}
		return Interval{0, min64(x.Hi, y.Hi-1)}
	case ir.And:
		return Interval{0, min64(x.Hi, y.Hi)}
	case ir.Or:
		return Interval{max64(x.Lo, y.Lo), mask(bits.Len64(x.Hi | y.Hi))}
	case ir.Xor:
		return Interval{0, mask(bits.Len64(x.Hi | y.Hi))}
	case ir.Shl:
		if y.Hi >= 64 {
			return top
		}
		hiHi, hiLo := bits.Mul64(x.Hi, 1<<y.Hi)
		if hiHi != 0 {
			return top
		}
		return Interval{x.Lo << y.Lo, hiLo}
	case ir.Shr:
		if y.Lo >= 64 {
			return Interval{0, 0}
		}
		lo := uint64(0)
		if y.Hi < 64 {
			lo = x.Lo >> y.Hi
		}
		return Interval{lo, x.Hi >> y.Lo}
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		return Interval{0, 1}
	}
	return top
}

// AnalyzeIntervals runs the interval analysis over the input program
// and reports reachable header-write truncations plus the proven range
// of every header write. The program must be finalized.
func AnalyzeIntervals(p *ir.Program) *IntervalResult {
	fn := p.Fn
	prob := &ivProblem{fn: fn}
	res := Solve[*ivState](fn, prob)

	out := &IntervalResult{StoreRanges: map[int]Interval{}}
	defs := lastDefs(fn)
	for _, b := range fn.Blocks {
		in := res.In[b.ID]
		if in == nil {
			continue // unreachable or on no feasible path
		}
		s := in.clone()
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			if instr.Kind == ir.StoreHeader {
				iv := s.regs[instr.Args[0]]
				out.StoreRanges[instr.ID] = iv
				if fb, ok := packet.HeaderFieldBits(instr.Obj); ok && iv.Hi > mask(fb) {
					tr := Truncation{
						Stmt:      instr.ID,
						Line:      instr.Line,
						Field:     instr.Obj,
						FieldBits: fb,
						Val:       iv,
					}
					tr.Why = []string{fmt.Sprintf(
						"stored value %s ∈ %s can exceed the %d-bit field maximum %d",
						fn.RegName(instr.Args[0]), iv, fb, mask(fb))}
					tr.Why = append(tr.Why, explainReg(fn, instr.Args[0], defs, 3)...)
					out.Truncations = append(out.Truncations, tr)
				}
			}
			ivStep(fn, s, instr)
		}
	}
	return out
}

package dataflow

import (
	"testing"
	"time"

	"gallium/internal/ir"
)

func TestDownCounterTerminates(t *testing.T) {
	b := ir.NewBuilder("down")
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	x := b.LoadHeader("x", "ip.saddr", ir.U32)
	zero := b.Const("zero", ir.U32, 0)
	one := b.Const("one", ir.U32, 1)
	b.Jump(head)
	b.SetBlock(head)
	cond := b.BinOp("cond", ir.Gt, x, zero)
	b.Branch(cond, body, exit)
	b.SetBlock(body)
	x2 := b.BinOp("x2", ir.Sub, x, one)
	body.Instrs[len(body.Instrs)-1].Dst = []ir.Reg{x}
	_ = x2
	b.Jump(head)
	b.SetBlock(exit)
	b.Send()
	p := buildProg(b)
	done := make(chan struct{})
	go func() { AnalyzeIntervals(p); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AnalyzeIntervals did not terminate within 10s on a u32 down-counter loop")
	}
}

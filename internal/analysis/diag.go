// Package analysis is Gallium's translation-validation and lint layer: a
// diagnostics framework plus two families of checks that stand between
// the compiler and a silent miscompile.
//
// The partition verifier (verify.go) is a translation validator in the
// Gauntlet tradition ("Finding Bugs in Compilers for Programmable Packet
// Processing"): written against the IR/deps/liveness layers but
// independent of the partitioner's own bookkeeping, it re-derives
// read/write sets, cross-partition dataflow, and resource usage from the
// *emitted* partition functions and asserts the §4 invariants from
// scratch. The middlebox lint (lint.go) runs classic dataflow
// diagnostics over the input program.
//
// Every diagnostic carries a stable check ID (see Checks), a severity, a
// source position recovered from internal/lang line stamps, and renders
// both human-readably and as JSON.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks diagnostics. Error-severity diagnostics gate artifact
// emission (gallium.Compile with Verify) and fail galliumc -vet.
type Severity uint8

// Severities, in ascending order.
const (
	Info Severity = iota
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("analysis: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding. Stmt is the statement ID within Fn (-1 for
// program- or function-level findings); Line is the 1-based MiniClick
// source line when the statement carries one (0 for synthesized or
// hand-built IR).
type Diagnostic struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	Fn       string   `json:"fn,omitempty"`
	Stmt     int      `json:"stmt"`
	Line     int      `json:"line,omitempty"`
	// Notes is the derivation chain behind the finding (dataflow facts,
	// one step per line), rendered by galliumc -vet -explain. Omitted
	// from JSON when empty, so the schema stays additive.
	Notes []string `json:"notes,omitempty"`
}

// String renders the diagnostic in the compiler's one-line format:
//
//	prog.mc:12: error [verify/offloaded-write] message
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d: ", d.Line)
	}
	fmt.Fprintf(&b, "%s [%s] %s", d.Severity, d.Check, d.Message)
	if d.Fn != "" {
		fmt.Fprintf(&b, " (in %s", d.Fn)
		if d.Stmt >= 0 {
			fmt.Fprintf(&b, ", s%d", d.Stmt)
		}
		b.WriteString(")")
	}
	return b.String()
}

// Diagnostics is a sortable report.
type Diagnostics []Diagnostic

// Sort orders the report deterministically: severity descending, then
// check ID, source line, function, statement, message.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Stmt != b.Stmt {
			return a.Stmt < b.Stmt
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is error severity.
func (ds Diagnostics) HasErrors() bool { return ds.CountAtLeast(Error) > 0 }

// CountAtLeast counts diagnostics at or above the given severity.
func (ds Diagnostics) CountAtLeast(min Severity) int {
	n := 0
	for _, d := range ds {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// ByCheck returns the diagnostics carrying the given check ID.
func (ds Diagnostics) ByCheck(id string) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Check == id {
			out = append(out, d)
		}
	}
	return out
}

// Render formats the report for humans, one diagnostic per line, each
// prefixed with the program name (so it reads like compiler output).
func (ds Diagnostics) Render(progName string) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s:%s\n", progName, d.String())
	}
	return b.String()
}

// RenderExplain renders like Render but follows each diagnostic with
// its derivation chain (Notes), one indented step per line — the
// galliumc -vet -explain surface.
func (ds Diagnostics) RenderExplain(progName string) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s:%s\n", progName, d.String())
		for _, n := range d.Notes {
			fmt.Fprintf(&b, "    note: %s\n", n)
		}
	}
	return b.String()
}

// jsonReport is the stable machine-readable schema (golden-tested).
type jsonReport struct {
	Program     string      `json:"program"`
	Errors      int         `json:"errors"`
	Warnings    int         `json:"warnings"`
	Diagnostics Diagnostics `json:"diagnostics"`
}

// JSON serializes the report with its summary counts. The layout is a
// compatibility surface: tools parse it, and a golden-file test pins it.
func (ds Diagnostics) JSON(progName string) ([]byte, error) {
	rep := jsonReport{
		Program:     progName,
		Errors:      ds.CountAtLeast(Error),
		Warnings:    ds.CountAtLeast(Warning) - ds.CountAtLeast(Error),
		Diagnostics: ds,
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = Diagnostics{}
	}
	return json.MarshalIndent(rep, "", "  ")
}

// CheckInfo documents one registered check: the invariant it guards and
// the paper section motivating it (DESIGN.md mirrors this table).
type CheckInfo struct {
	ID       string
	Severity Severity
	Doc      string
	Paper    string
}

// Checks returns every check the layer can emit, in stable order.
func Checks() []CheckInfo {
	return []CheckInfo{
		// Partition verifier (translation validation).
		{CheckMetadataCarry, Error, "every value a partition consumes is defined in that partition, carried in the synthesized transfer header, or rematerialized from the packet", "§4.3.2"},
		{CheckHandoffStore, Error, "every hand-off path stores every transfer-header field exactly as the wire format declares", "§4.3.2, Fig. 5"},
		{CheckOffloadedWrite, Error, "no switch-partition instruction writes server-owned state", "§2.1, §4.3.3"},
		{CheckWritebackBypass, Error, "replicated-state writes never execute on the offloaded path: only the server updates switch-resident state, via the write-back protocol", "§4.3.3"},
		{CheckStaleReadWindow, Error, "an offloaded read of a global never moves across a server-side write to the same global (the packet would observe state from the wrong side of its own update)", "§4.2.1 rules 1-2, §4.3.3"},
		{CheckSingleAccess, Error, "each global is accessed at most once per switch pass (one table lookup per pipeline traversal)", "§2.2, §4.2.1 rules 3-4"},
		{CheckFastPathWriteLoss, Error, "a packet the switch completes (fast path) has no pending server-side effects on any path reaching that terminator", "§1, §4.2.1"},
		{CheckCFGShape, Error, "each partition function preserves the input program's CFG: same blocks, same branch structure, terminator ownership forms a valid pre/server/post pipeline", "§4.3.1, Fig. 4"},
		{CheckCoverage, Error, "every input statement executes in exactly one partition (pure header loads may be rematerialized into more)", "§4.2.2"},
		{CheckExpressiveness, Error, "switch partitions contain only P4-expressible instructions", "§2.2, §4.2.1"},
		{CheckStageBudget, Error, "the longest dependency chain in each switch partition fits the pipeline depth, re-derived from a fresh dependence graph", "§4.2.2 constraint 2"},
		{CheckSwitchMemory, Error, "switch-resident globals fit switch memory, re-summed from the emitted partitions", "§4.2.2 constraint 1"},
		{CheckMetadataBudget, Error, "peak live register bits in each switch partition fit the per-packet metadata budget", "§4.2.2 constraint 4"},
		{CheckTransferBudget, Error, "both synthesized transfer headers fit the transfer byte budget", "§4.2.2 constraint 5"},
		{CheckExpirySafe, Error, "every switch-partition lookup into a dynamic map (one the server inserts into) tests the found flag before consuming values — with flow-state expiry armed an entry can vanish between packets, and an untested miss silently reads zeroes instead of detouring to the server", "§4.3.3, state lifecycle"},

		// Middlebox lint (input-program dataflow diagnostics).
		{CheckUseBeforeDef, Error, "no register is read before it is written on some path from entry", "front-end soundness"},
		{CheckDeadStore, Warning, "every register write has a subsequent read (dead stores waste switch stages)", "§4.2.2"},
		{CheckUnreachableBlock, Warning, "every basic block is reachable from entry", "front-end soundness"},
		{CheckUnusedGlobal, Warning, "every declared global is accessed (unused annotated state wastes switch memory)", "§4.2.2 constraint 1"},
		{CheckUncheckedMapMiss, Warning, "a map lookup's values are not consumed without testing the found flag (the miss path would read zeroes)", "§3.2"},

		// Dataflow clients (internal/analysis/dataflow).
		{CheckIntervalTruncation, Warning, "no reachable header store's proven value range exceeds the field width (path-sensitive interval analysis; replaces the lint/width-truncation type heuristic)", "§2.2"},
		{CheckAffinityCertificate, Info, "per-map flow-affinity certificate: whether every key on every path is a pure (or identity) function of the ingress five-tuple", "§4.2, state locality"},
		{CheckAffinityCrossFlowKey, Error, "no partition transformation degrades a certified flow-pure map key into one depending on non-flow inputs", "§4.3, state locality"},
		{CheckAffinityUnprovableKey, Error, "no partition transformation degrades a certified exact (flow-owned) map key into a merely derived one", "§4.3, state locality"},
		{CheckAffinityCrossFlowState, Error, "no partition introduces a data-path write to a scalar global the input certificate records as read-only", "§4.3, state locality"},
		{CheckAffinityDrift, Error, "the stored flow-affinity certificate matches a fresh derivation from the input program (consumers trust it for state merging)", "§4.3"},
	}
}

// Check IDs. These are stable identifiers: tests, CI, and external tools
// match on them, so renaming one is a breaking change.
const (
	CheckMetadataCarry     = "verify/metadata-carry"
	CheckHandoffStore      = "verify/handoff-store"
	CheckOffloadedWrite    = "verify/offloaded-write"
	CheckWritebackBypass   = "verify/writeback-bypass"
	CheckStaleReadWindow   = "verify/stale-read-window"
	CheckSingleAccess      = "verify/single-access"
	CheckFastPathWriteLoss = "verify/fastpath-write-loss"
	CheckCFGShape          = "verify/cfg-shape"
	CheckCoverage          = "verify/coverage"
	CheckExpressiveness    = "verify/expressiveness"
	CheckStageBudget       = "verify/stage-budget"
	CheckSwitchMemory      = "verify/switch-memory"
	CheckMetadataBudget    = "verify/metadata-budget"
	CheckTransferBudget    = "verify/transfer-budget"
	CheckExpirySafe        = "verify/expiry-safe"

	CheckUseBeforeDef     = "lint/use-before-def"
	CheckDeadStore        = "lint/dead-store"
	CheckUnreachableBlock = "lint/unreachable-block"
	CheckUnusedGlobal     = "lint/unused-global"
	CheckUncheckedMapMiss = "lint/unchecked-map-miss"

	CheckIntervalTruncation     = "interval/width-truncation"
	CheckAffinityCertificate    = "affinity/certificate"
	CheckAffinityCrossFlowKey   = "affinity/cross-flow-key"
	CheckAffinityUnprovableKey  = "affinity/unprovable-key"
	CheckAffinityCrossFlowState = "affinity/cross-flow-state"
	CheckAffinityDrift          = "affinity/certificate-drift"
)

// checkSeverity returns the registered severity for a check ID.
func checkSeverity(id string) Severity {
	for _, c := range Checks() {
		if c.ID == id {
			return c.Severity
		}
	}
	return Error
}

package analysis

import (
	"fmt"

	"gallium/internal/cfg"
	"gallium/internal/deps"
	"gallium/internal/ir"
	"gallium/internal/liveness"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

// Verify is the partition verifier: a translation validator that checks
// a partitioner Result against the input program *without trusting the
// partitioner's own bookkeeping* (labels, assignment vector, resource
// report). Everything is re-derived from the emitted partition functions,
// the synthesized wire formats, and a fresh dependence graph:
//
//   - coverage & CFG shape: every input statement executes in exactly one
//     partition, and each partition preserves the input CFG with a valid
//     pre → server → post terminator-ownership pipeline;
//   - cross-partition dataflow: every value a partition consumes is
//     defined locally, carried in the transfer header, or rematerialized
//     from an unclobbered packet field; every hand-off path populates the
//     declared wire format;
//   - state discipline: switch partitions never write global state
//     (server-owned writes and write-back bypasses are reported under
//     separate IDs), reads never move across a server write to the same
//     global (stale-read window, DESIGN.md §4.3.3), and each global is
//     consulted at most once per switch pass;
//   - fast path: a packet the switch completes has no pending server-side
//     effects on any path reaching that terminator;
//   - resources: stage depth, switch memory, per-packet metadata, and
//     transfer budgets re-checked from scratch.
//
// All verifier diagnostics are error severity.
func Verify(res *partition.Result) Diagnostics {
	v := newVerifier(res)
	if v == nil {
		return Diagnostics{{
			Check: CheckCFGShape, Severity: Error, Stmt: -1,
			Message: "result is missing a program or partition function",
		}}
	}
	v.checkCFGShape()
	v.checkCoverage()
	v.checkSwitchInstrs()
	v.checkSingleAccess()
	v.checkCarries()
	v.checkHandoffs()
	v.checkStaleReads()
	v.checkRematClobber()
	v.checkFastPath()
	v.checkResources()
	v.checkExpirySafety()
	v.checkAffinity()
	v.ds.Sort()
	return v.ds
}

// vpart is one partition function in pipeline order.
type vpart struct {
	id partition.ID
	fn *ir.Function
}

type verifier struct {
	res   *partition.Result
	prog  *ir.Program
	cons  partition.Constraints
	parts []vpart // pre, srv, post

	graph *deps.Graph // rebuilt from the input program, not res.Graph
	reach [][]bool    // input-CFG block reachability

	// stmtPart maps input statement IDs to the partition that executes
	// them (content-matched; terminators resolved via ownership).
	stmtPart map[int]partition.ID
	// termOwner maps a block ID to the partition owning its Send/Drop
	// terminator, -1 when the block ends in Jump/Branch or the ownership
	// pattern is malformed.
	termOwner map[int]partition.ID

	ds Diagnostics
}

func newVerifier(res *partition.Result) *verifier {
	if res == nil || res.Prog == nil || res.Prog.Fn == nil ||
		res.PreFn == nil || res.SrvFn == nil || res.PostFn == nil {
		return nil
	}
	v := &verifier{
		res:  res,
		prog: res.Prog,
		cons: res.Cons,
		parts: []vpart{
			{partition.Pre, res.PreFn},
			{partition.NonOff, res.SrvFn},
			{partition.Post, res.PostFn},
		},
	}
	v.graph = deps.Build(v.prog)
	v.reach = cfg.New(v.prog.Fn).Reachable()
	v.deriveOwnership()
	v.deriveStmtPartitions()
	return v
}

func (v *verifier) errf(fn string, s *ir.Instr, check, format string, args ...any) {
	v.ds = append(v.ds, diag(check, fn, s, format, args...))
}

// entryReachable reports whether the input CFG can reach block b.
func (v *verifier) entryReachable(b int) bool { return b == 0 || v.reach[0][b] }

// synthesized reports whether the kind only appears in partitioner output
// (transfer-header plumbing), never in the input program.
func synthesized(k ir.Kind) bool { return k == ir.XferLoad || k == ir.XferStore }

// fingerprint identifies an instruction by content. Registers are shared
// across partition functions, so a copied statement fingerprints
// identically to its original; Line is excluded (synthesized
// rematerialization copies carry no position).
func fingerprint(in *ir.Instr) string {
	return fmt.Sprintf("%d|%v|%v|%d|%d|%q|%d", in.Kind, in.Dst, in.Args, in.Op, in.Imm, in.Obj, in.Typ)
}

// describe renders an instruction for messages.
func describe(in *ir.Instr) string {
	s := in.Kind.String()
	if in.Obj != "" {
		s += " " + in.Obj
	}
	if in.Line > 0 {
		s += fmt.Sprintf(" (line %d)", in.Line)
	}
	return s
}

// deriveOwnership resolves which partition owns each input Send/Drop
// terminator from the emitted terminator sequence: ToNext* Owner Drop*.
// Malformed sequences are reported by checkCFGShape; here they just
// leave the owner unset.
func (v *verifier) deriveOwnership() {
	v.termOwner = map[int]partition.ID{}
	for _, ob := range v.prog.Fn.Blocks {
		if ob.Term.Kind != ir.Send && ob.Term.Kind != ir.Drop {
			continue
		}
		for _, p := range v.parts {
			if ob.ID >= len(p.fn.Blocks) {
				break
			}
			k := p.fn.Blocks[ob.ID].Term.Kind
			if k == ir.ToNext {
				continue
			}
			if k == ob.Term.Kind {
				v.termOwner[ob.ID] = p.id
			}
			break
		}
	}
}

// deriveStmtPartitions content-matches every emitted non-synthesized
// instruction back to an input statement, in pipeline order, consuming
// each input statement at most once. Rematerialized header loads match
// an already-consumed original and are ignored.
func (v *verifier) deriveStmtPartitions() {
	v.stmtPart = map[int]partition.ID{}
	pending := map[string][]*ir.Instr{}
	for _, b := range v.prog.Fn.Blocks {
		for i := range b.Instrs {
			fp := fingerprint(&b.Instrs[i])
			pending[fp] = append(pending[fp], &b.Instrs[i])
		}
	}
	for _, p := range v.parts {
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if synthesized(in.Kind) {
					continue
				}
				fp := fingerprint(in)
				if q := pending[fp]; len(q) > 0 {
					v.stmtPart[q[0].ID] = p.id
					pending[fp] = q[1:]
				}
			}
		}
	}
	for b, owner := range v.termOwner {
		v.stmtPart[v.prog.Fn.Blocks[b].Term.ID] = owner
	}
}

// checkCFGShape asserts every partition function replicates the input
// CFG (same blocks, identical Jump/Branch structure) and that each
// Send/Drop block's terminator-ownership sequence across the pipeline is
// ToNext* Owner Drop*: earlier partitions hand the packet on, exactly one
// partition owns the exit, later partitions treat the path as departed.
func (v *verifier) checkCFGShape() {
	orig := v.prog.Fn
	for _, p := range v.parts {
		if len(p.fn.Blocks) != len(orig.Blocks) {
			v.errf(p.fn.Name, nil, CheckCFGShape,
				"partition has %d blocks, input has %d", len(p.fn.Blocks), len(orig.Blocks))
			return
		}
		for i, b := range p.fn.Blocks {
			if b.ID != i {
				v.errf(p.fn.Name, nil, CheckCFGShape, "block at index %d has ID %d", i, b.ID)
				return
			}
		}
	}
	for _, ob := range orig.Blocks {
		ot := &ob.Term
		switch ot.Kind {
		case ir.Jump, ir.Branch:
			for _, p := range v.parts {
				t := &p.fn.Blocks[ob.ID].Term
				if t.Kind != ot.Kind || t.Then != ot.Then || t.Else != ot.Else {
					v.errf(p.fn.Name, t, CheckCFGShape,
						"block %d terminator diverges from input: %s → %d/%d, input %s → %d/%d",
						ob.ID, t.Kind, t.Then, t.Else, ot.Kind, ot.Then, ot.Else)
					continue
				}
				if ot.Kind == ir.Branch && (len(t.Args) != 1 || t.Args[0] != ot.Args[0]) {
					v.errf(p.fn.Name, t, CheckCFGShape,
						"block %d branch condition diverges from input", ob.ID)
				}
			}
		case ir.Send, ir.Drop:
			// Ownership sequence: ToNext* Owner Drop*.
			seq := [3]ir.Kind{}
			for i, p := range v.parts {
				seq[i] = p.fn.Blocks[ob.ID].Term.Kind
			}
			if !validOwnership(seq, ot.Kind) {
				v.errf(orig.Name, ot, CheckCFGShape,
					"block %d (%s in input) has invalid terminator ownership across partitions: pre=%s server=%s post=%s",
					ob.ID, ot.Kind, seq[0], seq[1], seq[2])
			}
		}
	}
}

// validOwnership checks a per-block terminator sequence against the
// pipeline pattern ToNext* Owner Drop*, where Owner matches the input
// terminator kind.
func validOwnership(seq [3]ir.Kind, want ir.Kind) bool {
	i := 0
	for i < 3 && seq[i] == ir.ToNext {
		i++
	}
	if i == 3 || seq[i] != want {
		return false // nobody owns the exit
	}
	for i++; i < 3; i++ {
		if seq[i] != ir.Drop {
			return false
		}
	}
	return true
}

// checkCoverage asserts the emitted partitions execute every input
// statement exactly once. Pure header loads are the one sanctioned
// exception: rematerialization may re-execute them in a later partition.
func (v *verifier) checkCoverage() {
	expected := map[string][]*ir.Instr{}
	for _, b := range v.prog.Fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			fp := fingerprint(in)
			expected[fp] = append(expected[fp], in)
		}
	}
	actual := map[string]int{}
	sample := map[string]*ir.Instr{}
	where := map[string]string{}
	for _, p := range v.parts {
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if synthesized(in.Kind) {
					continue
				}
				fp := fingerprint(in)
				actual[fp]++
				sample[fp] = in
				where[fp] = p.fn.Name
			}
		}
	}
	for fp, origs := range expected {
		got := actual[fp]
		switch {
		case got < len(origs):
			v.errf(v.prog.Fn.Name, origs[0], CheckCoverage,
				"input statement %s executes in no partition (%d of %d copies lost)",
				describe(origs[0]), len(origs)-got, len(origs))
		case got > len(origs) && origs[0].Kind != ir.LoadHeader:
			v.errf(where[fp], origs[0], CheckCoverage,
				"input statement %s executes %d times across partitions (want %d)",
				describe(origs[0]), got, len(origs))
		}
	}
	for fp, got := range actual {
		if _, ok := expected[fp]; !ok && got > 0 {
			v.errf(where[fp], sample[fp], CheckCoverage,
				"partition contains statement %s that is not in the input program", describe(sample[fp]))
		}
	}
}

// checkSwitchInstrs walks the two switch partitions and flags global
// writes (server-owned state vs. write-back bypass) and instructions P4
// cannot express. Re-derives P4 expressibility locally rather than
// calling into the partitioner.
func (v *verifier) checkSwitchInstrs() {
	resident := v.switchResidentGlobals()
	for _, p := range v.parts {
		if p.id == partition.NonOff {
			continue
		}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if deps.IsGlobalWrite(in) {
					if resident[in.Obj] {
						v.errf(p.fn.Name, in, CheckWritebackBypass,
							"%s writes switch-resident global %q on the offloaded path, bypassing the write-back protocol (only the server may update replicated state)",
							in.Kind, in.Obj)
					} else {
						v.errf(p.fn.Name, in, CheckOffloadedWrite,
							"%s writes server-owned global %q from the switch", in.Kind, in.Obj)
					}
					continue
				}
				if !p4Expressible(v.prog, in) {
					v.errf(p.fn.Name, in, CheckExpressiveness,
						"%s is not expressible on the switch", describe(in))
				}
			}
		}
	}
}

// switchResidentGlobals re-derives the set of globals living on the
// switch: every global a switch-partition instruction accesses.
func (v *verifier) switchResidentGlobals() map[string]bool {
	resident := map[string]bool{}
	for _, p := range v.parts {
		if p.id == partition.NonOff {
			continue
		}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				if in := &b.Instrs[i]; !deps.IsGlobalWrite(in) {
					if gn := deps.GlobalAccessed(in); gn != "" {
						resident[gn] = true
					}
				}
			}
		}
	}
	return resident
}

// p4Expressible re-derives §4.2.1's expressiveness conditions,
// independently of the partitioner's copy: switch-ALU operations only,
// header (never payload) access, and data-structure reads with a size
// annotation. Transfer-header plumbing is expressible (the switch parses
// and deparses the synthesized header).
func p4Expressible(p *ir.Program, in *ir.Instr) bool {
	switch in.Kind {
	case ir.Const, ir.Not, ir.Convert, ir.LoadHeader, ir.StoreHeader,
		ir.GlobalLoad, ir.XferLoad, ir.XferStore:
		return true
	case ir.BinOp:
		return in.Op.P4Supported()
	case ir.PayloadMatch, ir.Hash:
		return false
	case ir.MapFind, ir.VecGet, ir.VecLen, ir.LpmFind:
		g := p.Global(in.Obj)
		return g != nil && g.MaxEntries > 0
	case ir.MapInsert, ir.MapRemove, ir.GlobalStore:
		return false
	case ir.Jump, ir.Branch, ir.Send, ir.Drop, ir.ToNext:
		return true
	}
	return false
}

// checkSingleAccess re-counts per-global accesses in each switch pass:
// the match-action pipeline consults each table at most once per
// traversal (lifted for disaggregated-RMT targets).
func (v *verifier) checkSingleAccess() {
	if v.cons.DisaggregatedRMT {
		return
	}
	for _, p := range v.parts {
		if p.id == partition.NonOff {
			continue
		}
		count := map[string]int{}
		var first = map[string]*ir.Instr{}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				if gn := deps.GlobalAccessed(&b.Instrs[i]); gn != "" {
					count[gn]++
					if first[gn] == nil {
						first[gn] = &b.Instrs[i]
					}
				}
			}
		}
		for gn, n := range count {
			if n > 1 {
				v.errf(p.fn.Name, first[gn], CheckSingleAccess,
					"global %q is accessed %d times in one switch pass (limit 1)", gn, n)
			}
		}
	}
}

// incomingFormat returns the wire format a partition receives, nil for
// the pre partition (nothing precedes it).
func (v *verifier) incomingFormat(id partition.ID) *packet.HeaderFormat {
	switch id {
	case partition.NonOff:
		return v.res.FormatA
	case partition.Post:
		return v.res.FormatB
	}
	return nil
}

// outgoingFormat returns the wire format a partition emits at hand-off,
// nil for the post partition (nothing follows it).
func (v *verifier) outgoingFormat(id partition.ID) *packet.HeaderFormat {
	switch id {
	case partition.Pre:
		return v.res.FormatA
	case partition.NonOff:
		return v.res.FormatB
	}
	return nil
}

// partReachable reports whether any packet can ever enter the partition:
// the server only sees packets the pre pass hands off, and the post pass
// only sees packets the server hands off. A partition with no incoming
// hand-off holds nothing but replicated dead code (e.g. a program whose
// observable work all offloads, leaving every Send/Drop on the switch),
// so consumer-side dataflow obligations are vacuous there.
func (v *verifier) partReachable(id partition.ID) bool {
	hasHandoff := func(f *ir.Function) bool {
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.ToNext {
				return true
			}
		}
		return false
	}
	switch id {
	case partition.NonOff:
		return hasHandoff(v.res.PreFn)
	case partition.Post:
		return hasHandoff(v.res.PreFn) && hasHandoff(v.res.SrvFn)
	}
	return true
}

// checkCarries re-derives cross-partition dataflow on the consumer side.
// Two obligations: (a) every XferLoad names a field of the incoming wire
// format at the right width; (b) every register a partition actually
// consumes is definitely assigned inside that partition — by its own
// code, by a transfer-header load, or by a rematerializing header load.
// An undefined read means a value was dropped at a partition boundary.
func (v *verifier) checkCarries() {
	for _, p := range v.parts {
		if !v.partReachable(p.id) {
			continue
		}
		format := v.incomingFormat(p.id)
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Kind != ir.XferLoad {
					continue
				}
				if format == nil {
					v.errf(p.fn.Name, in, CheckMetadataCarry,
						"partition loads transfer variable %q but receives no transfer header", in.Obj)
					continue
				}
				_, bits, ok := format.FieldOffset(in.Obj)
				if !ok {
					v.errf(p.fn.Name, in, CheckMetadataCarry,
						"transfer variable %q is loaded but absent from the incoming wire format %s", in.Obj, format)
					continue
				}
				if len(in.Dst) == 1 && p.fn.RegType(in.Dst[0]).Bits() != bits {
					v.errf(p.fn.Name, in, CheckMetadataCarry,
						"transfer variable %q carries %d bits but loads into a %d-bit register",
						in.Obj, bits, p.fn.RegType(in.Dst[0]).Bits())
				}
			}
		}

		// Definite assignment inside the partition. Two sanctioned
		// exceptions: (a) XferStore reads — hand-off capture stores every
		// transfer variable on every exit path, including paths where the
		// producing statement did not execute; consumers on such paths
		// never read the value, so the capture of an undefined register
		// is dead. (b) a replicated Branch whose condition lives in
		// another partition — benign only while nothing this partition
		// owns is control-dependent on it (the arms are interchangeable
		// here), which is verified below.
		cds := cfg.New(p.fn).ControlDeps()
		controlledEffect := v.controlledEffects(p.fn, cds)
		for _, u := range maybeUninitUses(p.fn) {
			if u.stmt.Kind == ir.XferStore {
				continue
			}
			if u.term && u.stmt.Kind == ir.Branch {
				if eff := controlledEffect[u.blk]; eff != nil {
					v.errf(p.fn.Name, u.stmt, CheckMetadataCarry,
						"branch condition %s (r%d) is not available in this partition but controls owned work (%s)",
						p.fn.RegName(u.reg), u.reg, describe(eff))
				}
				continue
			}
			v.errf(p.fn.Name, u.stmt, CheckMetadataCarry,
				"register %s (r%d) consumed by %s is neither defined in this partition, carried in the transfer header, nor rematerialized",
				p.fn.RegName(u.reg), u.reg, describe(u.stmt))
		}
	}
}

// controlledEffects maps each branch block to one partition-owned effect
// (instruction or Send terminator) control-dependent on it, nil when the
// branch controls nothing this partition executes.
func (v *verifier) controlledEffects(fn *ir.Function, cds [][]int) map[int]*ir.Instr {
	out := map[int]*ir.Instr{}
	for _, b := range fn.Blocks {
		for _, br := range cds[b.ID] {
			if out[br] != nil {
				continue
			}
			for i := range b.Instrs {
				if !synthesized(b.Instrs[i].Kind) {
					out[br] = &b.Instrs[i]
					break
				}
			}
			if out[br] == nil && b.Term.Kind == ir.Send {
				out[br] = &b.Term
			}
		}
	}
	return out
}

// checkHandoffs verifies the producer side of every partition boundary:
// each ToNext path stores exactly the fields of the outgoing wire format
// at the declared widths.
func (v *verifier) checkHandoffs() {
	for _, p := range v.parts {
		format := v.outgoingFormat(p.id)
		for _, b := range p.fn.Blocks {
			stored := map[string]*ir.Instr{}
			for i := range b.Instrs {
				if in := &b.Instrs[i]; in.Kind == ir.XferStore {
					stored[in.Obj] = in
				}
			}
			if b.Term.Kind == ir.ToNext {
				if format == nil {
					if len(stored) > 0 || p.id == partition.Post {
						v.errf(p.fn.Name, &b.Term, CheckHandoffStore,
							"block %d hands the packet on but the partition has no outgoing wire format", b.ID)
					}
					continue
				}
				for _, f := range format.Fields {
					in, ok := stored[f.Name]
					if !ok {
						v.errf(p.fn.Name, &b.Term, CheckHandoffStore,
							"hand-off at block %d does not store transfer variable %q declared in wire format %s",
							b.ID, f.Name, format)
						continue
					}
					if len(in.Args) == 1 && p.fn.RegType(in.Args[0]).Bits() != f.Bits {
						v.errf(p.fn.Name, in, CheckHandoffStore,
							"transfer variable %q stores a %d-bit register into a %d-bit field",
							f.Name, p.fn.RegType(in.Args[0]).Bits(), f.Bits)
					}
				}
			}
			for name, in := range stored {
				if format == nil {
					continue // already reported on the ToNext terminator
				}
				if _, _, ok := format.FieldOffset(name); !ok {
					v.errf(p.fn.Name, in, CheckHandoffStore,
						"transfer variable %q is stored but absent from the outgoing wire format %s", name, format)
				}
			}
		}
	}
}

// checkStaleReads re-derives §4.3.3's stale-read-window invariant from
// the fresh dependence graph: an offloaded read of a global must not be
// separated from a server-side write to the same global in a way that
// makes the packet observe state from the wrong side of its own update.
// Two windows exist:
//
//   - a pre-pass read R that the input orders *after* a server write W
//     executes on the switch before the server runs — R reads the
//     pre-update table;
//   - a post-pass read R that the input orders *before* a server write W
//     executes after output commit made W visible — R reads the
//     post-update table.
func (v *verifier) checkStaleReads() {
	type acc struct {
		s    *ir.Instr
		part partition.ID
	}
	var reads, writes []acc
	for _, s := range v.prog.Fn.Stmts() {
		gn := deps.GlobalAccessed(s)
		if gn == "" {
			continue
		}
		p, ok := v.stmtPart[s.ID]
		if !ok {
			continue
		}
		if deps.IsGlobalWrite(s) {
			writes = append(writes, acc{s, p})
		} else {
			reads = append(reads, acc{s, p})
		}
	}
	for _, w := range writes {
		if w.part != partition.NonOff {
			continue // switch-side writes are reported by checkSwitchInstrs
		}
		for _, r := range reads {
			if r.s.Obj != w.s.Obj {
				continue
			}
			switch r.part {
			case partition.Pre:
				if v.graph.CanHappenAfter(w.s.ID, r.s.ID) {
					v.errf(v.prog.Fn.Name, r.s, CheckStaleReadWindow,
						"pre-pass read of %q (s%d) follows a server write (s%d) in the input: the switch reads the table before the server updates it",
						r.s.Obj, r.s.ID, w.s.ID)
				}
			case partition.Post:
				if v.graph.CanHappenAfter(r.s.ID, w.s.ID) {
					v.errf(v.prog.Fn.Name, r.s, CheckStaleReadWindow,
						"post-pass read of %q (s%d) precedes a server write (s%d) in the input: the switch reads the table after write-back made the update visible",
						r.s.Obj, r.s.ID, w.s.ID)
				}
			}
		}
	}
}

// checkRematClobber validates rematerialization: a consumer partition
// that re-reads a header field instead of receiving the register must
// observe the value the original load saw. If an earlier partition can
// store to the field after the original load and still hand the packet
// on to the consumer, the re-read is clobbered.
func (v *verifier) checkRematClobber() {
	for pi, p := range v.parts {
		if p.id == partition.Pre {
			continue
		}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Kind != ir.LoadHeader {
					continue
				}
				// The original load this re-read stands for: the unique
				// input load with the same destination and field.
				orig := v.findOrigLoad(in)
				if orig == nil {
					continue
				}
				for _, s := range v.prog.Fn.Stmts() {
					if s.Kind != ir.StoreHeader || s.Obj != in.Obj {
						continue
					}
					sp, ok := v.stmtPart[s.ID]
					if !ok || int(sp) >= pi {
						continue // store runs at or after this partition
					}
					if !v.graph.CanHappenAfter(orig.ID, s.ID) {
						continue // store precedes the load; re-read is current
					}
					// Does any path continue past the store to this
					// partition?
					for _, t := range v.prog.Fn.Stmts() {
						if t.Kind != ir.Send && t.Kind != ir.Drop {
							continue
						}
						to, ok := v.stmtPart[t.ID]
						if !ok || int(to) < pi {
							continue
						}
						if s.ID == t.ID || v.graph.CanHappenAfter(s.ID, t.ID) {
							v.errf(p.fn.Name, in, CheckMetadataCarry,
								"rematerialized read of header field %q can observe an earlier-partition store (s%d) that the input orders after the original load (s%d)",
								in.Obj, s.ID, orig.ID)
							break
						}
					}
				}
			}
		}
	}
}

// findOrigLoad locates the unique input LoadHeader with the same
// destination register and field, or nil.
func (v *verifier) findOrigLoad(in *ir.Instr) *ir.Instr {
	var found *ir.Instr
	for _, s := range v.prog.Fn.Stmts() {
		if s.Kind == ir.LoadHeader && s.Obj == in.Obj &&
			len(s.Dst) == 1 && len(in.Dst) == 1 && s.Dst[0] == in.Dst[0] {
			if found != nil {
				return nil // ambiguous
			}
			found = s
		}
	}
	return found
}

// checkFastPath asserts the paper's fast-path definition from scratch: a
// terminator the pre partition owns means the server never touches the
// packet, so no path reaching it may carry pending server-side effects.
// For an owned Send, any server global write or header store upstream is
// lost; for an owned Drop, only global writes matter (the discarded
// packet's headers do not).
func (v *verifier) checkFastPath() {
	pre := v.parts[0].fn
	for _, b := range pre.Blocks {
		tk := b.Term.Kind
		if tk != ir.Send && tk != ir.Drop {
			continue
		}
		if !v.entryReachable(b.ID) {
			continue
		}
		for _, p := range v.parts[1:] {
			for _, sb := range p.fn.Blocks {
				if !v.entryReachable(sb.ID) {
					continue
				}
				onPath := sb.ID == b.ID || v.reach[sb.ID][b.ID]
				if !onPath {
					continue
				}
				for i := range sb.Instrs {
					in := &sb.Instrs[i]
					lost := deps.IsGlobalWrite(in) || (tk == ir.Send && in.Kind == ir.StoreHeader)
					if lost {
						v.errf(pre.Name, &b.Term, CheckFastPathWriteLoss,
							"switch-owned %s at block %d skips the server, losing %s in %s (block %d)",
							tk, b.ID, describe(in), p.fn.Name, sb.ID)
					}
				}
			}
		}
	}
}

// checkExpirySafety guards the flow-state lifecycle: once expiry is
// armed, any entry of a dynamic map (one the server inserts into) can
// vanish between two packets of the same flow. A switch-partition
// lookup into such a map must therefore test the found flag before
// consuming the values. An untested lookup was tolerable before the
// lifecycle existed — a seeded entry never disappeared mid-run — but
// under expiry the miss path is reachable for every flow, and it
// silently reads zero values where the live entry used to be, keeping
// the packet on the fast path instead of detouring to the server to
// re-establish the session. A found flag exported through the transfer
// header (XferStore) counts as tested: the server-side continuation
// observes it.
func (v *verifier) checkExpirySafety() {
	dynamic := map[string]bool{}
	for _, s := range v.prog.Fn.Stmts() {
		if s.Kind == ir.MapInsert {
			dynamic[s.Obj] = true
		}
	}
	if len(dynamic) == 0 {
		return
	}
	for _, p := range v.parts {
		if p.id == partition.NonOff {
			continue
		}
		used := map[ir.Reg]bool{}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				for _, r := range b.Instrs[i].Args {
					used[r] = true
				}
			}
			for _, r := range b.Term.Args {
				used[r] = true
			}
		}
		for _, b := range p.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Kind != ir.MapFind || !dynamic[in.Obj] || len(in.Dst) < 2 {
					continue
				}
				found := in.Dst[0]
				valueUsed := false
				for _, r := range in.Dst[1:] {
					if used[r] {
						valueUsed = true
						break
					}
				}
				if valueUsed && !used[found] {
					v.errf(p.fn.Name, in, CheckExpirySafe,
						"offloaded lookup of dynamic map %q consumes values without testing the found flag %s (r%d): once expiry is armed the entry can vanish between packets, and the untested miss reads zeroes on the fast path instead of detouring to the server",
						in.Obj, p.fn.RegName(found), found)
				}
			}
		}
	}
}

// checkResources re-derives §4.2.2's resource constraints from the
// emitted partitions: dependency-chain depth per switch pass, resident
// global memory, peak live metadata bits, and wire-format sizes.
func (v *verifier) checkResources() {
	for _, p := range v.parts {
		if p.id == partition.NonOff {
			continue
		}
		if v.cons.PipelineDepth > 0 {
			if d := chainDepth(v.prog, p.fn); d > v.cons.PipelineDepth {
				v.errf(p.fn.Name, nil, CheckStageBudget,
					"longest dependency chain is %d statements, pipeline depth budget is %d", d, v.cons.PipelineDepth)
			}
		}
		if v.cons.MetadataBytes > 0 {
			if bits := liveness.MaxLiveBits(p.fn); bits > v.cons.MetadataBytes*8 {
				v.errf(p.fn.Name, nil, CheckMetadataBudget,
					"peak live registers need %d bits of per-packet metadata, budget is %d", bits, v.cons.MetadataBytes*8)
			}
		}
	}
	if v.cons.SwitchMemoryBytes > 0 {
		total := 0
		resident := map[string]bool{}
		for _, p := range v.parts {
			if p.id == partition.NonOff {
				continue
			}
			for _, b := range p.fn.Blocks {
				for i := range b.Instrs {
					if gn := deps.GlobalAccessed(&b.Instrs[i]); gn != "" && !resident[gn] {
						resident[gn] = true
						if g := v.prog.Global(gn); g != nil {
							total += v.cons.EffectiveSizeBytes(g)
						}
					}
				}
			}
		}
		if total > v.cons.SwitchMemoryBytes {
			v.errf(v.prog.Fn.Name, nil, CheckSwitchMemory,
				"switch-resident globals need %d bytes, switch memory budget is %d", total, v.cons.SwitchMemoryBytes)
		}
	}
	if v.cons.TransferBytes > 0 {
		for _, f := range []struct {
			name   string
			format *packet.HeaderFormat
		}{{"pre→server", v.res.FormatA}, {"server→post", v.res.FormatB}} {
			if f.format != nil && f.format.DataLen() > v.cons.TransferBytes {
				v.errf(v.prog.Fn.Name, nil, CheckTransferBudget,
					"%s transfer header is %d bytes, budget is %d", f.name, f.format.DataLen(), v.cons.TransferBytes)
			}
		}
	}
}

// chainDepth rebuilds a dependence graph over one partition function and
// returns its longest acyclic dependency chain in statements.
func chainDepth(p *ir.Program, fn *ir.Function) int {
	tmp := &ir.Program{Name: p.Name, Globals: p.Globals, Fn: fn}
	g := deps.Build(tmp)
	star := g.DependsOnStar()
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = 1
	}
	max := 0
	for changed := true; changed; {
		changed = false
		for s := 0; s < g.N; s++ {
			if star[s][s] {
				continue
			}
			for _, e := range g.Out[s] {
				if star[e.To][e.To] {
					continue
				}
				if d := dist[s] + 1; d > dist[e.To] && d <= g.N {
					dist[e.To] = d
					changed = true
				}
			}
		}
	}
	for s := 0; s < g.N; s++ {
		if dist[s] > max {
			max = dist[s]
		}
	}
	return max
}

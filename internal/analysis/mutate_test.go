package analysis

import (
	"testing"

	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

// Mutation harness: each test partitions a known-good program, seeds one
// fault class into the partitioner's output (the exact kind of bug a
// partitioner regression would produce), and asserts the verifier flags
// it under the expected check ID. A verifier these mutants slip past is
// decorative. CI runs the harness as `go test ./internal/analysis/ -run
// Mutation`.

// staleReadSource re-reads a map entry after inserting it, so the second
// find is ordered after a server-side write and must stay on the server.
const staleReadSource = `
middlebox staleread {
    map<u16 -> u32> m(max = 1024);

    proc process(pkt p) {
        u16 key = p.l4.sport;
        let r = m.find(key);
        if (r.ok) {
            p.ip.daddr = r.v0;
            send(p);
        } else {
            u32 addr = p.ip.daddr;
            m.insert(key, addr);
            let r2 = m.find(key);
            if (r2.ok) {
                p.ip.daddr = r2.v0;
                send(p);
            } else {
                send(p);
            }
        }
    }
}
`

// serverGlobalSource keeps its counter entirely on the server: the
// accesses are control-dependent on a payload match, which P4 cannot
// express, so the switch never touches the global.
const serverGlobalSource = `
middlebox srvcounter {
    global u32 hits;

    proc process(pkt p) {
        if (payload_contains("GET")) {
            u32 h = hits;
            hits = h + 1;
        }
        send(p);
    }
}
`

// mutationHost compiles and partitions a program, failing the test on
// any front-end or partitioner error and asserting the unmutated result
// verifies clean (so the seeded fault is the only thing a failure can
// blame).
func mutationHost(t *testing.T, src string) *partition.Result {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if ds := Verify(res); ds.HasErrors() {
		t.Fatalf("unmutated result does not verify:\n%s", ds.Render(prog.Name))
	}
	return res
}

func minilbHost(t *testing.T) *partition.Result {
	t.Helper()
	spec, err := middleboxes.Lookup("minilb")
	if err != nil {
		t.Fatal(err)
	}
	return mutationHost(t, spec.Source)
}

// findInstr locates the first instruction in fn matching pred.
func findInstr(t *testing.T, fn *ir.Function, what string, pred func(*ir.Instr) bool) (blk, idx int) {
	t.Helper()
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if pred(&b.Instrs[i]) {
				return b.ID, i
			}
		}
	}
	t.Fatalf("no %s in %s", what, fn.Name)
	return 0, 0
}

func byKindObj(kind ir.Kind, obj string) func(*ir.Instr) bool {
	return func(in *ir.Instr) bool { return in.Kind == kind && in.Obj == obj }
}

// removeInstr deletes the instruction at (blk, idx) and renumbers.
func removeInstr(fn *ir.Function, blk, idx int) ir.Instr {
	in := fn.Blocks[blk].Instrs[idx]
	instrs := fn.Blocks[blk].Instrs
	fn.Blocks[blk].Instrs = append(instrs[:idx:idx], instrs[idx+1:]...)
	fn.Finalize()
	return in
}

// insertInstr appends an instruction to a block's body and renumbers.
// Partition functions share the input's register numbering, so an
// instruction lifted from one partition is well-formed in another.
func insertInstr(fn *ir.Function, blk int, in ir.Instr) {
	fn.Blocks[blk].Instrs = append(fn.Blocks[blk].Instrs, in)
	fn.Finalize()
}

// expectCheck verifies the mutated result and asserts the expected check
// ID is among the error-severity findings.
func expectCheck(t *testing.T, res *partition.Result, id string) {
	t.Helper()
	ds := Verify(res)
	if len(ds.ByCheck(id)) == 0 {
		t.Fatalf("seeded fault not flagged as %s; verifier reported:\n%s", id, ds.Render(res.Prog.Name))
	}
	if !ds.HasErrors() {
		t.Fatalf("seeded fault produced no error-severity diagnostics")
	}
}

// Fault class 1: a value consumed after a partition boundary loses its
// transfer-header carry (the consumer reads an undefined register).
func TestMutationDroppedCarry(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.PostFn, "XferLoad", func(in *ir.Instr) bool {
		return in.Kind == ir.XferLoad
	})
	removeInstr(res.PostFn, blk, idx)
	expectCheck(t, res, CheckMetadataCarry)
}

// Fault class 2: a hand-off path forgets to capture a transfer variable
// the wire format declares.
func TestMutationDroppedHandoffStore(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.SrvFn, "XferStore", func(in *ir.Instr) bool {
		return in.Kind == ir.XferStore
	})
	removeInstr(res.SrvFn, blk, idx)
	expectCheck(t, res, CheckHandoffStore)
}

// Fault class 3: a replicated-state write migrates onto the offloaded
// path, bypassing the write-back protocol.
func TestMutationWritebackBypass(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.SrvFn, "MapInsert", byKindObj(ir.MapInsert, "conn"))
	in := removeInstr(res.SrvFn, blk, idx)
	insertInstr(res.PreFn, blk, in)
	expectCheck(t, res, CheckWritebackBypass)
}

// Fault class 4: a write to server-owned state (a global the switch
// never reads) appears in a switch partition.
func TestMutationOffloadedWrite(t *testing.T) {
	res := mutationHost(t, serverGlobalSource)
	blk, idx := findInstr(t, res.SrvFn, "GlobalStore", byKindObj(ir.GlobalStore, "hits"))
	in := res.SrvFn.Blocks[blk].Instrs[idx]
	insertInstr(res.PreFn, blk, in)
	expectCheck(t, res, CheckOffloadedWrite)
}

// Fault class 5: a read ordered after a server write to the same global
// moves onto the pre pass, opening a stale-read window (§4.3.3): the
// switch would consult the table before the server's insert lands.
func TestMutationStaleReadWindow(t *testing.T) {
	res := mutationHost(t, staleReadSource)
	blk, idx := findInstr(t, res.SrvFn, "post-insert MapFind", byKindObj(ir.MapFind, "m"))
	in := removeInstr(res.SrvFn, blk, idx)
	insertInstr(res.PreFn, blk, in)
	expectCheck(t, res, CheckStaleReadWindow)
}

// Fault class 6: a partition's CFG diverges from the input program (a
// branch retargeted by a codegen bug).
func TestMutationRetargetedBranch(t *testing.T) {
	res := minilbHost(t)
	for i := range res.PostFn.Blocks {
		term := &res.PostFn.Blocks[i].Term
		if term.Kind == ir.Branch {
			term.Then = term.Else
			expectCheck(t, res, CheckCFGShape)
			return
		}
	}
	t.Fatal("no branch in post partition")
}

// Fault class 7: the pre partition claims a terminator it does not own,
// sending the packet out while server-side effects (the conn insert) are
// still pending on that path.
func TestMutationStolenTerminator(t *testing.T) {
	res := minilbHost(t)
	for i := range res.PreFn.Blocks {
		term := &res.PreFn.Blocks[i].Term
		if term.Kind == ir.ToNext {
			term.Kind = ir.Send
			expectCheck(t, res, CheckFastPathWriteLoss)
			return
		}
	}
	t.Fatal("no hand-off in pre partition")
}

// Fault class 8: an input statement executes in no partition.
func TestMutationDeletedStmt(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.SrvFn, "VecGet", byKindObj(ir.VecGet, "backends"))
	removeInstr(res.SrvFn, blk, idx)
	expectCheck(t, res, CheckCoverage)
}

// Fault class 9: a global is consulted twice in one switch pass.
func TestMutationDuplicatedAccess(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.PreFn, "MapFind", byKindObj(ir.MapFind, "conn"))
	insertInstr(res.PreFn, blk, res.PreFn.Blocks[blk].Instrs[idx])
	expectCheck(t, res, CheckSingleAccess)
}

// Fault class 10: the partitioner accepts a result that overruns the
// switch's resource budgets; the verifier re-derives each budget from
// the emitted partitions and catches all four.
func TestMutationResourceBudgets(t *testing.T) {
	cases := []struct {
		name    string
		tighten func(c *partition.Constraints)
		check   string
	}{
		{"stage", func(c *partition.Constraints) { c.PipelineDepth = 1 }, CheckStageBudget},
		{"memory", func(c *partition.Constraints) { c.SwitchMemoryBytes = 1 }, CheckSwitchMemory},
		{"metadata", func(c *partition.Constraints) { c.MetadataBytes = 1 }, CheckMetadataBudget},
		{"transfer", func(c *partition.Constraints) { c.TransferBytes = 1 }, CheckTransferBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := minilbHost(t)
			tc.tighten(&res.Cons)
			expectCheck(t, res, tc.check)
		})
	}
}

// Fault class 11: a switch partition contains an instruction P4 cannot
// express (and that the input program never had).
func TestMutationForeignInstr(t *testing.T) {
	res := minilbHost(t)
	blk, idx := findInstr(t, res.PreFn, "MapFind", byKindObj(ir.MapFind, "conn"))
	seed := res.PreFn.Blocks[blk].Instrs[idx]
	insertInstr(res.PreFn, blk, ir.Instr{
		Kind: ir.Hash,
		Dst:  []ir.Reg{seed.Args[0]},
		Args: []ir.Reg{seed.Args[0]},
	})
	expectCheck(t, res, CheckExpressiveness)
}

// Fault class 12: the synthesized wire format loses a field the emitted
// code still loads and stores.
func TestMutationNarrowedFormat(t *testing.T) {
	res := minilbHost(t)
	if res.FormatA == nil || len(res.FormatA.Fields) == 0 {
		t.Fatal("minilb has no pre→server format")
	}
	narrowed, err := packet.NewHeaderFormat(res.FormatA.Fields[1:])
	if err != nil {
		t.Fatal(err)
	}
	res.FormatA = narrowed
	ds := Verify(res)
	if len(ds.ByCheck(CheckMetadataCarry)) == 0 {
		t.Errorf("dropped field's XferLoad not flagged as %s:\n%s", CheckMetadataCarry, ds.Render("minilb"))
	}
	if len(ds.ByCheck(CheckHandoffStore)) == 0 {
		t.Errorf("dropped field's XferStore not flagged as %s:\n%s", CheckHandoffStore, ds.Render("minilb"))
	}
}

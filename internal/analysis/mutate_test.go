package analysis

import (
	"testing"

	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

// Mutation harness, verifier leg: each fault class from Mutations
// partitions a known-good program, seeds the fault into the partitioner's
// output, and asserts the verifier flags it under the expected check ID.
// A verifier these mutants slip past is decorative. The runtime leg of
// the same harness lives in internal/difftest, which executes every
// Behavioral mutant against the unpartitioned oracle. CI runs both as
// `go test ./internal/analysis/ ./internal/difftest/ -run Mutation`.

// mutationHost compiles and partitions a host program, failing the test
// on any front-end or partitioner error and asserting the unmutated
// result verifies clean (so the seeded fault is the only thing a failure
// can blame).
func mutationHost(t *testing.T, host string) *partition.Result {
	t.Helper()
	src := HostSource(host)
	if src == "" {
		spec, err := middleboxes.Lookup(host)
		if err != nil {
			t.Fatal(err)
		}
		src = spec.Source
	}
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if ds := Verify(res); ds.HasErrors() {
		t.Fatalf("unmutated result does not verify:\n%s", ds.Render(prog.Name))
	}
	return res
}

// expectCheck verifies the mutated result and asserts the expected check
// ID is among the error-severity findings.
func expectCheck(t *testing.T, res *partition.Result, id string) {
	t.Helper()
	ds := Verify(res)
	if len(ds.ByCheck(id)) == 0 {
		t.Fatalf("seeded fault not flagged as %s; verifier reported:\n%s", id, ds.Render(res.Prog.Name))
	}
	if !ds.HasErrors() {
		t.Fatalf("seeded fault produced no error-severity diagnostics")
	}
}

// TestMutationClasses drives all fifteen fault classes through the
// verifier.
func TestMutationClasses(t *testing.T) {
	if len(Mutations) != 15 {
		t.Fatalf("harness has %d mutation classes, want 15", len(Mutations))
	}
	for _, m := range Mutations {
		t.Run(m.Name, func(t *testing.T) {
			res := mutationHost(t, m.Host)
			if err := m.Apply(res); err != nil {
				t.Fatalf("seeding fault: %v", err)
			}
			expectCheck(t, res, m.Check)
		})
	}
}

// TestMutationResourceBudgets extends the resource-budget class to all
// four switch budgets; the verifier re-derives each from the emitted
// partitions.
func TestMutationResourceBudgets(t *testing.T) {
	cases := []struct {
		name    string
		tighten func(c *partition.Constraints)
		check   string
	}{
		{"stage", func(c *partition.Constraints) { c.PipelineDepth = 1 }, CheckStageBudget},
		{"memory", func(c *partition.Constraints) { c.SwitchMemoryBytes = 1 }, CheckSwitchMemory},
		{"metadata", func(c *partition.Constraints) { c.MetadataBytes = 1 }, CheckMetadataBudget},
		{"transfer", func(c *partition.Constraints) { c.TransferBytes = 1 }, CheckTransferBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := mutationHost(t, "minilb")
			tc.tighten(&res.Cons)
			expectCheck(t, res, tc.check)
		})
	}
}

// TestMutationNarrowedFormatBothSides pins the detail that a dropped wire
// field is flagged on both ends of the boundary: the load that can no
// longer be satisfied and the store with nowhere to go.
func TestMutationNarrowedFormatBothSides(t *testing.T) {
	res := mutationHost(t, "minilb")
	if res.FormatA == nil || len(res.FormatA.Fields) == 0 {
		t.Fatal("minilb has no pre→server format")
	}
	narrowed, err := packet.NewHeaderFormat(res.FormatA.Fields[1:])
	if err != nil {
		t.Fatal(err)
	}
	res.FormatA = narrowed
	ds := Verify(res)
	if len(ds.ByCheck(CheckMetadataCarry)) == 0 {
		t.Errorf("dropped field's XferLoad not flagged as %s:\n%s", CheckMetadataCarry, ds.Render("minilb"))
	}
	if len(ds.ByCheck(CheckHandoffStore)) == 0 {
		t.Errorf("dropped field's XferStore not flagged as %s:\n%s", CheckHandoffStore, ds.Render("minilb"))
	}
}

package analysis

import (
	"strings"
	"testing"
)

// TestRenderSurfaces pins the two human-facing report renderings: the
// plain one-line-per-diagnostic form and the -explain form that appends
// each finding's derivation chain.
func TestRenderSurfaces(t *testing.T) {
	ds := Diagnostics{
		{
			Check:    "affinity/cross-flow-state",
			Severity: Error,
			Message:  "global g written on a flow-keyed path",
			Fn:       "process",
			Stmt:     3,
			Line:     12,
			Notes:    []string{"key derives from {ip.saddr}", "write reaches shard state"},
		},
		{Check: "lint/unused-global", Severity: Warning, Message: "global u is never read", Stmt: -1},
	}

	plain := ds.Render("prog.mc")
	for _, want := range []string{
		"prog.mc:12: error [affinity/cross-flow-state] global g written on a flow-keyed path (in process, s3)",
		"prog.mc:warning [lint/unused-global] global u is never read",
	} {
		if !strings.Contains(plain, want) {
			t.Errorf("Render missing %q:\n%s", want, plain)
		}
	}
	if strings.Contains(plain, "note:") {
		t.Error("Render leaked derivation notes")
	}

	explained := ds.RenderExplain("prog.mc")
	for _, want := range []string{
		"    note: key derives from {ip.saddr}",
		"    note: write reaches shard state",
	} {
		if !strings.Contains(explained, want) {
			t.Errorf("RenderExplain missing %q:\n%s", want, explained)
		}
	}
}

// TestDefinedRegsEqual covers the uninit lattice's state comparison,
// which the solver only consults on revisits.
func TestDefinedRegsEqual(t *testing.T) {
	p := &definedRegs{}
	if !p.Equal([]bool{true, false}, []bool{true, false}) {
		t.Error("equal states compared unequal")
	}
	if p.Equal([]bool{true}, []bool{false}) {
		t.Error("unequal states compared equal")
	}
}

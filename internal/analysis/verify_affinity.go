package analysis

import (
	"gallium/internal/analysis/dataflow"
	"gallium/internal/ir"
)

// checkAffinity validates the flow-affinity certificate differentially.
// Two obligations:
//
//  1. affinity/certificate-drift — the certificate stored in the Result
//     must match a fresh derivation from the input program. Consumers
//     (Session merge policy, the difftest oracle) trust the stored copy,
//     so a stale or tampered certificate is an error even when the
//     partitions themselves are sound.
//
//  2. The partitions must not weaken the certificate. Any
//     non-synthesized partition instruction whose fingerprint does not
//     appear in the input program is *foreign* — introduced by a
//     transformation rather than copied from the source. A foreign store
//     to a scalar global the input never writes silently invalidates the
//     exact multi-worker merge (affinity/cross-flow-state); a foreign
//     definition feeding a map key can degrade that map's verdict
//     (affinity/cross-flow-key when the key becomes dependent on
//     non-flow state, affinity/unprovable-key when it merely loses the
//     exact identity cover).
//
// Legitimate partitioner output contains no foreign instructions
// (checkCoverage enforces that independently), so obligation 2 never
// fires on trusted output by construction: copied access sites are
// judged by the input's own flow-sensitive per-site taints, not
// re-derived through the partition CFG.
func (v *verifier) checkAffinity() {
	fn := v.prog.Fn
	cert := dataflow.AnalyzeAffinity(v.prog)

	if v.res.Affinity != nil && v.res.Affinity.Summary() != cert.Summary() {
		v.errf(fn.Name, nil, CheckAffinityDrift,
			"stored certificate (%s) does not match a fresh derivation from the input (%s)",
			v.res.Affinity.Summary(), cert.Summary())
	}

	inputFP := map[string]bool{}
	for _, s := range fn.Stmts() {
		inputFP[fingerprint(s)] = true
	}

	// Per-site key taints from the certificate, keyed by fingerprint so
	// they can be looked up from the partition copies. When identical
	// content appears at several input sites, the taints are joined —
	// conservative, and each joined component still certifies at least
	// the map verdict.
	siteTaints := map[string][]dataflow.Taint{}
	for _, m := range cert.Maps {
		for _, site := range m.Sites {
			s := fn.Stmt(site.Stmt)
			if s == nil {
				continue
			}
			fp := fingerprint(s)
			if prev, ok := siteTaints[fp]; ok {
				for i := range prev {
					if i < len(site.Taints) {
						prev[i] = prev[i].Join(site.Taints[i])
					}
				}
			} else {
				siteTaints[fp] = append([]dataflow.Taint(nil), site.Taints...)
			}
		}
	}

	summary := func(r ir.Reg) dataflow.Taint {
		if int(r) >= 0 && int(r) < len(cert.RegSummary) {
			return cert.RegSummary[r]
		}
		return dataflow.Taint{NonFlow: true, Ident: -1}
	}

	for _, part := range v.parts {
		// Pass 1: taints of foreign definitions, evaluated locally with
		// the input register summary as fallback. Two sweeps resolve
		// foreign→foreign chains of the depth mutations produce without
		// a full fixpoint.
		foreign := map[ir.Reg]dataflow.Taint{}
		lookup := func(r ir.Reg) dataflow.Taint {
			if t, ok := foreign[r]; ok {
				return t
			}
			return summary(r)
		}
		for sweep := 0; sweep < 2; sweep++ {
			for _, b := range part.fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if synthesized(in.Kind) || inputFP[fingerprint(in)] {
						continue
					}
					if t, ok := dataflow.TransferTaint(in, lookup); ok {
						foreign[in.Dst[0]] = t
					}
				}
			}
		}

		// Pass 2: re-judge every state access touched by foreign content.
		for _, b := range part.fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if synthesized(in.Kind) {
					continue
				}
				isForeign := !inputFP[fingerprint(in)]
				switch in.Kind {
				case ir.GlobalStore:
					g := v.prog.Global(in.Obj)
					if isForeign && (g == nil || g.Kind == ir.KindScalar) && len(cert.GlobalWrites[in.Obj]) == 0 {
						v.errf(part.fn.Name, in, CheckAffinityCrossFlowState,
							"foreign store to scalar global %q: the input program never writes it, so the certified exact multi-worker merge no longer holds", in.Obj)
					}
				case ir.MapFind, ir.MapInsert, ir.MapRemove:
					g := v.prog.Global(in.Obj)
					if g == nil || g.Kind != ir.KindMap {
						continue
					}
					nk := len(g.KeyTypes)
					if in.Kind != ir.MapInsert || nk > len(in.Args) {
						nk = len(in.Args)
					}
					base := siteTaints[fingerprint(in)]
					taints := make([]dataflow.Taint, nk)
					touched := isForeign
					for j := 0; j < nk; j++ {
						r := in.Args[j]
						if t, ok := foreign[r]; ok {
							taints[j] = t
							touched = true
						} else if !isForeign && j < len(base) {
							taints[j] = base[j]
						} else {
							taints[j] = summary(r)
						}
					}
					if !touched {
						continue
					}
					got, want := dataflow.KeyVerdict(taints), cert.MapVerdict(in.Obj)
					if got >= want {
						continue
					}
					if got == dataflow.CrossFlow {
						v.errf(part.fn.Name, in, CheckAffinityCrossFlowKey,
							"key of %s depends on non-flow state (%s; certificate says %s)",
							describe(in), got, want)
					} else {
						v.errf(part.fn.Name, in, CheckAffinityUnprovableKey,
							"key of %s is no longer provably an exact flow identity (%s; certificate says %s)",
							describe(in), got, want)
					}
				}
			}
		}
	}
}

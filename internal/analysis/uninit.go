package analysis

import (
	"gallium/internal/analysis/dataflow"
	"gallium/internal/ir"
)

// uninitUse is one read of a register that is not definitely assigned on
// every entry path reaching it.
type uninitUse struct {
	stmt *ir.Instr
	reg  ir.Reg
	term bool // the read is a terminator operand (branch condition)
	blk  int
}

// definedRegs is the definite-assignment problem on the dataflow solver:
// a forward must-analysis whose state is the set of registers written on
// *every* path from entry. The boundary (entry) state is empty — a loop
// back to entry cannot define anything first — and joins intersect, so
// the intersection with the empty boundary keeps the entry block clean
// even when it has predecessors.
type definedRegs struct {
	fn *ir.Function
}

func (p *definedRegs) Direction() dataflow.Direction { return dataflow.Forward }
func (p *definedRegs) Bottom() []bool                { return nil }
func (p *definedRegs) IsBottom(s []bool) bool        { return s == nil }
func (p *definedRegs) Boundary() []bool              { return make([]bool, len(p.fn.Regs)) }

func (p *definedRegs) Join(a, b []bool) []bool {
	j := append([]bool(nil), a...)
	for i := range j {
		j[i] = j[i] && b[i]
	}
	return j
}

func (p *definedRegs) Equal(a, b []bool) bool { return boolsEqual(a, b) }

func (p *definedRegs) Transfer(b *ir.Block, in []bool) []bool {
	cur := append([]bool(nil), in...)
	for i := range b.Instrs {
		for _, r := range b.Instrs[i].Dst {
			cur[r] = true
		}
	}
	return cur
}

// maybeUninitUses runs a forward definite-assignment dataflow over fn:
// a register is "defined at P" only when every path from entry to P
// writes it. It returns every read of a not-definitely-assigned register
// in blocks reachable from entry, deduplicated per (statement, register).
//
// The lint layer reports these directly (use-before-def); the partition
// verifier reuses the same analysis on the emitted partition functions,
// where an undefined read means a value crossed a partition boundary
// without a transfer-header carry or rematerialization.
func maybeUninitUses(fn *ir.Function) []uninitUse {
	if len(fn.Blocks) == 0 {
		return nil
	}
	res := dataflow.Solve[[]bool](fn, &definedRegs{fn: fn})

	type key struct {
		id  int
		reg ir.Reg
	}
	seen := map[key]bool{}
	var uses []uninitUse
	report := func(s *ir.Instr, r ir.Reg, term bool, blk int) {
		k := key{s.ID, r}
		if seen[k] {
			return
		}
		seen[k] = true
		uses = append(uses, uninitUse{stmt: s, reg: r, term: term, blk: blk})
	}
	for _, b := range fn.Blocks {
		if res.In[b.ID] == nil {
			continue // unreachable from entry
		}
		cur := append([]bool(nil), res.In[b.ID]...)
		for i := range b.Instrs {
			s := &b.Instrs[i]
			for _, r := range s.Args {
				if !cur[r] {
					report(s, r, false, b.ID)
				}
			}
			for _, r := range s.Dst {
				cur[r] = true
			}
		}
		for _, r := range b.Term.Args {
			if !cur[r] {
				report(&b.Term, r, true, b.ID)
			}
		}
	}
	return uses
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package analysis

import (
	"gallium/internal/cfg"
	"gallium/internal/ir"
)

// uninitUse is one read of a register that is not definitely assigned on
// every entry path reaching it.
type uninitUse struct {
	stmt *ir.Instr
	reg  ir.Reg
	term bool // the read is a terminator operand (branch condition)
	blk  int
}

// maybeUninitUses runs a forward definite-assignment dataflow over fn:
// a register is "defined at P" only when every path from entry to P
// writes it. It returns every read of a not-definitely-assigned register
// in blocks reachable from entry, deduplicated per (statement, register).
//
// The lint layer reports these directly (use-before-def); the partition
// verifier reuses the same analysis on the emitted partition functions,
// where an undefined read means a value crossed a partition boundary
// without a transfer-header carry or rematerialization.
func maybeUninitUses(fn *ir.Function) []uninitUse {
	n := len(fn.Blocks)
	if n == 0 {
		return nil
	}
	nregs := len(fn.Regs)
	graph := cfg.New(fn)
	reach := graph.Reachable()
	reachable := func(b int) bool { return b == 0 || reach[0][b] }

	preds := make([][]int, n)
	addSucc := func(from, to int) { preds[to] = append(preds[to], from) }
	for _, b := range fn.Blocks {
		switch b.Term.Kind {
		case ir.Jump:
			addSucc(b.ID, b.Term.Then)
		case ir.Branch:
			addSucc(b.ID, b.Term.Then)
			addSucc(b.ID, b.Term.Else)
		}
	}

	// Must-analysis over bitsets: in[b] = ∩ out[preds]; entry starts
	// empty, everything else starts at ⊤ (all defined) and narrows.
	newSet := func(val bool) []bool {
		s := make([]bool, nregs)
		if val {
			for i := range s {
				s[i] = true
			}
		}
		return s
	}
	in := make([][]bool, n)
	out := make([][]bool, n)
	for i := 0; i < n; i++ {
		in[i] = newSet(i != 0)
		out[i] = newSet(i != 0)
	}
	transfer := func(b *ir.Block, set []bool) []bool {
		cur := append([]bool(nil), set...)
		for i := range b.Instrs {
			for _, r := range b.Instrs[i].Dst {
				cur[r] = true
			}
		}
		return cur
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			if !reachable(b.ID) {
				continue
			}
			cur := newSet(b.ID != 0)
			for _, p := range preds[b.ID] {
				if !reachable(p) {
					continue
				}
				for r := 0; r < nregs; r++ {
					cur[r] = cur[r] && out[p][r]
				}
			}
			if b.ID == 0 {
				// Entry has no defined-on-entry registers even with preds
				// (a loop back to entry cannot define anything first).
				for r := 0; r < nregs; r++ {
					cur[r] = false
				}
			}
			o := transfer(b, cur)
			if !boolsEqual(cur, in[b.ID]) || !boolsEqual(o, out[b.ID]) {
				in[b.ID], out[b.ID] = cur, o
				changed = true
			}
		}
	}

	type key struct {
		id  int
		reg ir.Reg
	}
	seen := map[key]bool{}
	var uses []uninitUse
	report := func(s *ir.Instr, r ir.Reg, term bool, blk int) {
		k := key{s.ID, r}
		if seen[k] {
			return
		}
		seen[k] = true
		uses = append(uses, uninitUse{stmt: s, reg: r, term: term, blk: blk})
	}
	for _, b := range fn.Blocks {
		if !reachable(b.ID) {
			continue
		}
		cur := append([]bool(nil), in[b.ID]...)
		for i := range b.Instrs {
			s := &b.Instrs[i]
			for _, r := range s.Args {
				if !cur[r] {
					report(s, r, false, b.ID)
				}
			}
			for _, r := range s.Dst {
				cur[r] = true
			}
		}
		for _, r := range b.Term.Args {
			if !cur[r] {
				report(&b.Term, r, true, b.ID)
			}
		}
	}
	return uses
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

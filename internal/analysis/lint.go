package analysis

import (
	"fmt"

	"gallium/internal/analysis/dataflow"
	"gallium/internal/cfg"
	"gallium/internal/deps"
	"gallium/internal/ir"
	"gallium/internal/liveness"
)

// diag builds one diagnostic anchored at a statement (nil for
// program-level findings).
func diag(check, fn string, s *ir.Instr, format string, args ...any) Diagnostic {
	d := Diagnostic{
		Check:    check,
		Severity: checkSeverity(check),
		Message:  fmt.Sprintf(format, args...),
		Fn:       fn,
		Stmt:     -1,
	}
	if s != nil {
		d.Stmt = s.ID
		d.Line = s.Line
	}
	return d
}

// Lint runs the middlebox dataflow diagnostics over an input program:
// use-before-def, dead stores, unreachable blocks, unused globals,
// unchecked map misses, interval-proven header-width truncation, and the
// informational flow-affinity certificate. The program must be finalized
// (statement IDs assigned); it is not mutated.
func Lint(p *ir.Program) Diagnostics {
	var ds Diagnostics
	fn := p.Fn
	if fn == nil || len(fn.Blocks) == 0 {
		return ds
	}

	// lint/use-before-def — a register read on some entry path with no
	// prior write.
	for _, u := range maybeUninitUses(fn) {
		ds = append(ds, diag(CheckUseBeforeDef, fn.Name, u.stmt,
			"register %s (r%d) may be read before it is written", fn.RegName(u.reg), u.reg))
	}

	// lint/unreachable-block — blocks no entry path reaches. Empty blocks
	// (synthesized joins) are skipped; only lost code is worth a warning.
	graph := cfg.New(fn)
	reach := graph.Reachable()
	for _, b := range fn.Blocks {
		if b.ID != 0 && !reach[0][b.ID] && len(b.Instrs) > 0 {
			ds = append(ds, diag(CheckUnreachableBlock, fn.Name, &b.Instrs[0],
				"block %d (%d statements) is unreachable from entry", b.ID, len(b.Instrs)))
		}
	}

	// lint/dead-store — a pure definition whose results are never read.
	// Side-effecting kinds are exempt: the instruction is kept for its
	// effect regardless of its register results.
	info := liveness.Analyze(fn)
	for _, b := range fn.Blocks {
		if b.ID != 0 && !reach[0][b.ID] {
			continue
		}
		live := map[ir.Reg]bool{}
		for r := range info.LiveOut[b.ID] {
			live[r] = true
		}
		for _, r := range b.Term.Args {
			live[r] = true
		}
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			s := &b.Instrs[j]
			if isPureDef(s.Kind) && len(s.Dst) > 0 {
				dead := true
				for _, r := range s.Dst {
					if live[r] {
						dead = false
						break
					}
				}
				if dead {
					ds = append(ds, diag(CheckDeadStore, fn.Name, s,
						"result of %s into %s (r%d) is never read", s.Kind, fn.RegName(s.Dst[0]), s.Dst[0]))
				}
			}
			for _, r := range s.Dst {
				delete(live, r)
			}
			for _, r := range s.Args {
				live[r] = true
			}
		}
	}

	// lint/unused-global — declared state no statement touches.
	accessed := map[string]bool{}
	usedRegs := map[ir.Reg]bool{}
	for _, s := range fn.Stmts() {
		if gn := deps.GlobalAccessed(s); gn != "" {
			accessed[gn] = true
		}
		for _, r := range s.Args {
			usedRegs[r] = true
		}
	}
	for _, g := range p.Globals {
		if !accessed[g.Name] {
			ds = append(ds, diag(CheckUnusedGlobal, fn.Name, nil,
				"%s %q is declared but never accessed", g.Kind, g.Name))
		}
	}

	// lint/unchecked-map-miss — lookup values consumed while the found
	// flag is never tested: the miss path silently reads zeroes.
	for _, s := range fn.Stmts() {
		if (s.Kind != ir.MapFind && s.Kind != ir.LpmFind) || len(s.Dst) < 2 {
			continue
		}
		found := s.Dst[0]
		valueUsed := false
		for _, v := range s.Dst[1:] {
			if usedRegs[v] {
				valueUsed = true
				break
			}
		}
		if valueUsed && !usedRegs[found] {
			ds = append(ds, diag(CheckUncheckedMapMiss, fn.Name, s,
				"%s values are used but the found flag %s (r%d) is never tested; a reachable miss reads zero values",
				s.Obj, fn.RegName(found), found))
		}
	}

	// interval/width-truncation — a reachable header store whose proven
	// value range exceeds the field width. The interval analysis replaces
	// the old register-type heuristic: a u32 register provably masked to
	// 8 bits no longer warns, while a genuinely wide value still does.
	iv := dataflow.AnalyzeIntervals(p)
	for _, tr := range iv.Truncations {
		d := diag(CheckIntervalTruncation, fn.Name, fn.Stmt(tr.Stmt),
			"storing %s (range %s) into %d-bit field %s can truncate",
			fn.RegName(fn.Stmt(tr.Stmt).Args[0]), tr.Val, tr.FieldBits, tr.Field)
		d.Notes = tr.Why
		ds = append(ds, d)
	}

	// affinity/certificate — the machine-checked flow-affinity verdict
	// for each map, plus any data-path scalar writes. Informational: the
	// certificate itself lives in partition.Result; these surface it in
	// -vet output and the JSON report.
	aff := dataflow.AnalyzeAffinity(p)
	for _, name := range aff.MapNames() {
		m := aff.Maps[name]
		d := diag(CheckAffinityCertificate, fn.Name, nil,
			"map %q flow-affinity: %s (%d access site(s))", name, m.Verdict, len(m.Sites))
		for _, site := range m.Sites {
			if site.Verdict == m.Verdict {
				d.Stmt = site.Stmt
				d.Line = site.Line
				d.Notes = site.Why
				break
			}
		}
		ds = append(ds, d)
	}
	for _, name := range aff.WrittenGlobals() {
		site := aff.GlobalWrites[name][0]
		d := diag(CheckAffinityCertificate, fn.Name, fn.Stmt(site.Stmt),
			"global %q is written on the data path: state aggregates across flows (multi-worker merges are relaxed)", name)
		d.Notes = site.Why
		ds = append(ds, d)
	}

	ds.Sort()
	return ds
}

// isPureDef reports whether the kind's only observable effect is writing
// its destination registers.
func isPureDef(k ir.Kind) bool {
	switch k {
	case ir.Const, ir.BinOp, ir.Not, ir.Convert, ir.LoadHeader, ir.Hash,
		ir.VecGet, ir.VecLen, ir.GlobalLoad:
		return true
	}
	return false
}

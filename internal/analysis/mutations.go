package analysis

import (
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

// Mutation harness fault classes. Each class seeds one kind of
// partitioner regression into a known-good partition result — exactly the
// bug a compiler change could introduce. Two layers hunt the mutants:
// the verifier (translation validation over the partition result, see
// mutate_test.go) and the differential fuzzer (runtime execution against
// the unpartitioned oracle, see internal/difftest). A fault class both
// layers miss is a hole in the safety net.

// StaleReadHostSource re-reads a map entry after inserting it. The second
// find is ordered after a server-side write, so it must stay on the
// server; the found branch leaves a visible mark (TOS) so a stale miss
// also diverges at runtime.
const StaleReadHostSource = `
middlebox staleread {
    map<u16 -> u32> m(max = 1024);

    proc process(pkt p) {
        u16 key = p.l4.sport;
        let r = m.find(key);
        if (r.ok) {
            p.ip.daddr = r.v0;
            send(p);
        } else {
            u32 addr = p.ip.daddr;
            m.insert(key, addr);
            let r2 = m.find(key);
            if (r2.ok) {
                p.ip.tos = 7;
                p.ip.daddr = r2.v0;
                send(p);
            } else {
                send(p);
            }
        }
    }
}
`

// ServerGlobalHostSource keeps its counter entirely on the server: the
// accesses are control-dependent on a payload match, which P4 cannot
// express, so the switch never touches the global. The counter's low
// bits are echoed into the TOS byte so a lost or duplicated increment is
// visible in packet output, not just in final state.
const ServerGlobalHostSource = `
middlebox srvcounter {
    global u32 hits;

    proc process(pkt p) {
        if (payload_contains("GET")) {
            u32 h = hits;
            hits = h + 1;
            p.ip.tos = (u8)(h & 0xFF);
        }
        send(p);
    }
}
`

// FlowMapHostSource is a flow table keyed by the full ingress 5-tuple —
// the exact-affinity shape the dataflow certificate exists to prove. The
// found arm echoes the first-seen IP ID (so a hit is visible in packet
// bytes) and the read-only scalar `seen` into TOS (so a foreign write to
// it is visible too); the miss arm records the packet's own ID.
const FlowMapHostSource = `
middlebox flowmap {
    map<u32, u32, u16, u16, u8 -> u16> flows(max = 4096);
    global u32 seen;

    proc process(pkt p) {
        u32 fsrc = p.ip.saddr;
        u32 fdst = p.ip.daddr;
        u16 fsp = p.l4.sport;
        u16 fdp = p.l4.dport;
        u8 fpr = p.ip.proto;
        u32 s = seen;
        let r = flows.find(fsrc, fdst, fsp, fdp, fpr);
        if (r.ok) {
            p.ip.id = r.v0;
            p.ip.tos = (u8)(s & 0xFF);
        } else {
            u16 mark = p.ip.id;
            flows.insert(fsrc, fdst, fsp, fdp, fpr, mark);
        }
        send(p);
    }
}
`

// MutationClass is one seeded fault class.
type MutationClass struct {
	// Name is a stable kebab-case identifier.
	Name string
	// Host selects the program the fault is seeded into: "minilb" (the
	// §4 running example, supplied by the caller), "staleread", or
	// "srvcounter".
	Host string
	// Check is the verifier check ID expected to flag the mutant.
	Check string
	// Behavioral reports whether the fault changes runtime semantics.
	// Resource-budget and redundant-access faults are structural only —
	// the mutant computes the same function — so the differential layer
	// cannot see them and the verifier is the only line of defense.
	Behavioral bool
	// Apply seeds the fault into a freshly partitioned result. It
	// returns an error when the host lacks the expected anchor (which
	// means the host program or partitioner changed shape).
	Apply func(res *partition.Result) error
}

// HostSource returns the MiniClick source for a mutation host name, or
// "" for hosts the caller must supply (minilb, which lives in
// internal/middleboxes — analysis does not depend on it).
func HostSource(host string) string {
	switch host {
	case "staleread":
		return StaleReadHostSource
	case "srvcounter":
		return ServerGlobalHostSource
	case "flowmap":
		return FlowMapHostSource
	}
	return ""
}

// findMutInstr locates the first instruction in fn matching pred.
func findMutInstr(fn *ir.Function, what string, pred func(*ir.Instr) bool) (blk, idx int, err error) {
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if pred(&b.Instrs[i]) {
				return b.ID, i, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("no %s in %s", what, fn.Name)
}

// findLastMutInstr locates the last instruction in fn matching pred.
func findLastMutInstr(fn *ir.Function, what string, pred func(*ir.Instr) bool) (blk, idx int, err error) {
	found := false
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if pred(&b.Instrs[i]) {
				blk, idx, found = b.ID, i, true
			}
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("no %s in %s", what, fn.Name)
	}
	return blk, idx, nil
}

func byKindObj(kind ir.Kind, obj string) func(*ir.Instr) bool {
	return func(in *ir.Instr) bool { return in.Kind == kind && in.Obj == obj }
}

// removeInstr deletes the instruction at (blk, idx) and renumbers.
func removeInstr(fn *ir.Function, blk, idx int) ir.Instr {
	in := fn.Blocks[blk].Instrs[idx]
	instrs := fn.Blocks[blk].Instrs
	fn.Blocks[blk].Instrs = append(instrs[:idx:idx], instrs[idx+1:]...)
	fn.Finalize()
	return in
}

// insertInstr appends an instruction to a block's body and renumbers.
// Partition functions share the input's register numbering, so an
// instruction lifted from one partition is well-formed in another.
func insertInstr(fn *ir.Function, blk int, in ir.Instr) {
	fn.Blocks[blk].Instrs = append(fn.Blocks[blk].Instrs, in)
	fn.Finalize()
}

// insertInstrBefore places an instruction at (blk, idx), ahead of the
// instruction currently there — for faults that must take effect before
// a specific access executes (a key clobber is only behavioral when it
// runs before the lookup that consumes the key).
func insertInstrBefore(fn *ir.Function, blk, idx int, in ir.Instr) {
	instrs := fn.Blocks[blk].Instrs
	instrs = append(instrs[:idx:idx], append([]ir.Instr{in}, instrs[idx:]...)...)
	fn.Blocks[blk].Instrs = instrs
	fn.Finalize()
}

// Mutations is the harness: the twelve fault classes of PR 2 plus the
// three flow-affinity classes, as data so both detection layers can
// iterate them.
var Mutations = []MutationClass{
	{
		// A value consumed after a partition boundary loses its
		// transfer-header carry (the consumer reads an undefined
		// register).
		Name: "dropped-carry", Host: "minilb", Check: CheckMetadataCarry, Behavioral: true,
		Apply: func(res *partition.Result) error {
			// The last carry is the chosen backend address — the one
			// value the post pass visibly consumes (storehdr daddr).
			blk, idx, err := findLastMutInstr(res.PostFn, "XferLoad", func(in *ir.Instr) bool {
				return in.Kind == ir.XferLoad
			})
			if err != nil {
				return err
			}
			removeInstr(res.PostFn, blk, idx)
			return nil
		},
	},
	{
		// A hand-off path forgets to capture a transfer variable the
		// wire format declares.
		Name: "dropped-handoff-store", Host: "minilb", Check: CheckHandoffStore, Behavioral: true,
		Apply: func(res *partition.Result) error {
			// Drop the backend-address store (the last one), so the post
			// pass rewrites daddr from a field the server never filled.
			blk, idx, err := findLastMutInstr(res.SrvFn, "XferStore", func(in *ir.Instr) bool {
				return in.Kind == ir.XferStore
			})
			if err != nil {
				return err
			}
			removeInstr(res.SrvFn, blk, idx)
			return nil
		},
	},
	{
		// A replicated-state write migrates onto the offloaded path,
		// bypassing the write-back protocol.
		Name: "writeback-bypass", Host: "minilb", Check: CheckWritebackBypass, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "MapInsert", byKindObj(ir.MapInsert, "conn"))
			if err != nil {
				return err
			}
			in := removeInstr(res.SrvFn, blk, idx)
			insertInstr(res.PreFn, blk, in)
			return nil
		},
	},
	{
		// A write to server-owned state (a global the switch never
		// reads) appears in a switch partition.
		Name: "offloaded-write", Host: "srvcounter", Check: CheckOffloadedWrite, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "GlobalStore", byKindObj(ir.GlobalStore, "hits"))
			if err != nil {
				return err
			}
			in := res.SrvFn.Blocks[blk].Instrs[idx]
			// Plant the write in the pre pass's entry block — the one
			// block every packet executes — not in the replica of the
			// payload-gated block, which the switch hands off before
			// reaching.
			insertInstr(res.PreFn, 0, in)
			return nil
		},
	},
	{
		// A read ordered after a server write to the same global moves
		// onto the pre pass, opening a §4.3.3 stale-read window: the
		// switch consults the table before the server's insert lands.
		Name: "stale-read-window", Host: "staleread", Check: CheckStaleReadWindow, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "post-insert MapFind", byKindObj(ir.MapFind, "m"))
			if err != nil {
				return err
			}
			in := removeInstr(res.SrvFn, blk, idx)
			insertInstr(res.PreFn, blk, in)
			return nil
		},
	},
	{
		// A partition's CFG diverges from the input program (a branch
		// retargeted by a codegen bug).
		Name: "retargeted-branch", Host: "minilb", Check: CheckCFGShape, Behavioral: true,
		Apply: func(res *partition.Result) error {
			// Retarget the else edge onto the then block: the server-path
			// packets (bk.ok false) fall into the found-arm replica,
			// which drops them. Collapsing the other way would merely
			// send every packet down the path those packets already take.
			for i := range res.PostFn.Blocks {
				term := &res.PostFn.Blocks[i].Term
				if term.Kind == ir.Branch {
					term.Else = term.Then
					return nil
				}
			}
			return fmt.Errorf("no branch in post partition")
		},
	},
	{
		// The pre partition claims a terminator it does not own, sending
		// the packet out while server-side effects are still pending.
		Name: "stolen-terminator", Host: "minilb", Check: CheckFastPathWriteLoss, Behavioral: true,
		Apply: func(res *partition.Result) error {
			for i := range res.PreFn.Blocks {
				term := &res.PreFn.Blocks[i].Term
				if term.Kind == ir.ToNext {
					term.Kind = ir.Send
					return nil
				}
			}
			return fmt.Errorf("no hand-off in pre partition")
		},
	},
	{
		// An input statement executes in no partition.
		Name: "deleted-stmt", Host: "minilb", Check: CheckCoverage, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "VecGet", byKindObj(ir.VecGet, "backends"))
			if err != nil {
				return err
			}
			removeInstr(res.SrvFn, blk, idx)
			return nil
		},
	},
	{
		// A global is consulted twice in one switch pass. The duplicate
		// returns the same values, so runtime behavior is unchanged —
		// this is a resource-model violation only the verifier can see.
		Name: "duplicated-access", Host: "minilb", Check: CheckSingleAccess, Behavioral: false,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.PreFn, "MapFind", byKindObj(ir.MapFind, "conn"))
			if err != nil {
				return err
			}
			insertInstr(res.PreFn, blk, res.PreFn.Blocks[blk].Instrs[idx])
			return nil
		},
	},
	{
		// The partitioner accepts a result that overruns the switch's
		// resource budgets. Pure capacity accounting — the program still
		// computes the right function. (mutate_test.go covers all four
		// budgets; the stage budget stands in for the class here.)
		Name: "resource-budget", Host: "minilb", Check: CheckStageBudget, Behavioral: false,
		Apply: func(res *partition.Result) error {
			res.Cons.PipelineDepth = 1
			return nil
		},
	},
	{
		// A switch partition contains an instruction P4 cannot express
		// (and that the input program never had). The hash clobbers the
		// connection key register before the hand-off captures it.
		Name: "foreign-instr", Host: "minilb", Check: CheckExpressiveness, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.PreFn, "MapFind", byKindObj(ir.MapFind, "conn"))
			if err != nil {
				return err
			}
			seed := res.PreFn.Blocks[blk].Instrs[idx]
			insertInstr(res.PreFn, blk, ir.Instr{
				Kind: ir.Hash,
				Dst:  []ir.Reg{seed.Args[0]},
				Args: []ir.Reg{seed.Args[0]},
			})
			return nil
		},
	},
	{
		// The synthesized wire format loses a field the emitted code
		// still loads and stores.
		Name: "narrowed-format", Host: "minilb", Check: CheckMetadataCarry, Behavioral: true,
		Apply: func(res *partition.Result) error {
			if res.FormatA == nil || len(res.FormatA.Fields) == 0 {
				return fmt.Errorf("host has no pre→server format")
			}
			narrowed, err := packet.NewHeaderFormat(res.FormatA.Fields[1:])
			if err != nil {
				return err
			}
			res.FormatA = narrowed
			return nil
		},
	},
	{
		// A map key register is clobbered with non-flow state (the
		// per-packet IP ID) before the lookup: two packets of one flow no
		// longer map to one key, so the certified-exact flow table stops
		// being partitioned by flow. Repeat packets that should hit now
		// miss, leaving the echoed first-seen ID unwritten.
		Name: "cross-flow-key", Host: "flowmap", Check: CheckAffinityCrossFlowKey, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.PreFn, "MapFind", byKindObj(ir.MapFind, "flows"))
			if err != nil {
				return err
			}
			seed := res.PreFn.Blocks[blk].Instrs[idx]
			insertInstrBefore(res.PreFn, blk, idx, ir.Instr{
				Kind: ir.LoadHeader,
				Obj:  "ip.id",
				Dst:  []ir.Reg{seed.Args[0]},
			})
			return nil
		},
	},
	{
		// The inserted key is hashed first: still a pure function of the
		// flow tuple — no cross-flow aliasing from other state — but no
		// longer the identity the exact certificate requires, and the
		// lookup side (unhashed) misses entries the oracle finds.
		Name: "unprovable-key", Host: "flowmap", Check: CheckAffinityUnprovableKey, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "MapInsert", byKindObj(ir.MapInsert, "flows"))
			if err != nil {
				return err
			}
			seed := res.SrvFn.Blocks[blk].Instrs[idx]
			insertInstrBefore(res.SrvFn, blk, idx, ir.Instr{
				Kind: ir.Hash,
				Dst:  []ir.Reg{seed.Args[0]},
				Args: []ir.Reg{seed.Args[0]},
			})
			return nil
		},
	},
	{
		// A scalar global the input program only reads gains a server-side
		// write: state silently starts aggregating across flows, so the
		// certificate's exact multi-worker merge is no longer sound. The
		// host echoes the scalar into TOS, so the foreign write is visible
		// in packet bytes as well as in final state.
		Name: "cross-flow-state", Host: "flowmap", Check: CheckAffinityCrossFlowState, Behavioral: true,
		Apply: func(res *partition.Result) error {
			blk, idx, err := findMutInstr(res.SrvFn, "saddr load", byKindObj(ir.LoadHeader, "ip.saddr"))
			if err != nil {
				return err
			}
			src := res.SrvFn.Blocks[blk].Instrs[idx]
			insertInstr(res.SrvFn, blk, ir.Instr{
				Kind: ir.GlobalStore,
				Obj:  "seen",
				Args: []ir.Reg{src.Dst[0]},
			})
			return nil
		},
	},
}

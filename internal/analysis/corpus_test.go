package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/partition"
)

// corpusPrograms gathers every MiniClick program the repo ships: the
// middlebox suite, the extra built-ins behind Lookup, and the example
// sources under examples/mc.
func corpusPrograms(t *testing.T) map[string]string {
	t.Helper()
	progs := map[string]string{}
	for _, spec := range middleboxes.Extended() {
		progs[spec.Name] = spec.Source
	}
	for _, name := range []string{"minilb", "ipgateway", "ddosdetector"} {
		spec, err := middleboxes.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		progs[spec.Name] = spec.Source
	}
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "mc", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".mc")
		progs["examples/"+name] = string(src)
	}
	if len(progs) < 6 {
		t.Fatalf("corpus has only %d programs", len(progs))
	}
	return progs
}

// TestVerifyCorpusClean partitions every shipped program and asserts the
// independent verifier signs off: zero error-severity diagnostics. This
// is the standing translation-validation bar — any partitioner change
// that miscompiles a known middlebox fails here.
func TestVerifyCorpusClean(t *testing.T) {
	for name, src := range corpusPrograms(t) {
		t.Run(name, func(t *testing.T) {
			prog, err := lang.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := partition.Partition(prog, partition.DefaultConstraints())
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			ds := Verify(res)
			if n := ds.CountAtLeast(Error); n > 0 {
				t.Errorf("verifier found %d errors on a trusted program:\n%s", n, ds.Render(name))
			}
		})
	}
}

// TestLintCorpusNoErrors lints every shipped program: warnings are
// tolerated (some examples deliberately leave slack), error-severity
// findings are not.
func TestLintCorpusNoErrors(t *testing.T) {
	for name, src := range corpusPrograms(t) {
		t.Run(name, func(t *testing.T) {
			prog, err := lang.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ds := Lint(prog)
			if n := ds.CountAtLeast(Error); n > 0 {
				t.Errorf("lint found %d errors on a trusted program:\n%s", n, ds.Render(name))
			}
		})
	}
}

package deps

import (
	"fmt"
	"strings"
	"testing"

	"gallium/internal/ir"
)

// dotProg builds a small program with one of each dependence-edge kind:
// the register flowing from load to store is a data dependency, storing
// over a field another statement read is an anti dependency (picking a
// register pair with no data overlap, which would win the edge label),
// and the branch controls its arms.
func dotProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("dotprog")
	x := b.LoadHeader("x", "ip.saddr", ir.U32)
	y := b.LoadHeader("y", "ip.daddr", ir.U32)
	c := b.Const("c", ir.Bool, 1)
	then := b.NewBlock()
	els := b.NewBlock()
	b.Branch(c, then, els)
	b.SetBlock(then)
	b.StoreHeader("ip.daddr", x)
	b.StoreHeader("ip.saddr", y)
	b.Send()
	b.SetBlock(els)
	b.Drop()
	fn := b.Fn()
	fn.Finalize()
	p := &ir.Program{Name: "dotprog", Fn: fn}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDotRendersAllEdgeKindsAndNodes(t *testing.T) {
	p := dotProg(t)
	g := Build(p)
	dot := g.Dot(nil)

	if !strings.HasPrefix(dot, "digraph deps {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a graphviz document:\n%s", dot)
	}
	// Every statement appears as a node with its printed IR in the label.
	for _, s := range p.Fn.Stmts() {
		decl := fmt.Sprintf("n%d [label=", s.ID)
		if !strings.Contains(dot, decl) {
			t.Errorf("missing node for s%d:\n%s", s.ID, dot)
		}
	}
	// One style per edge kind.
	for _, style := range []string{"style=solid", "style=dashed", "style=dotted"} {
		if !strings.Contains(dot, style) {
			t.Errorf("no %s edge rendered:\n%s", style, dot)
		}
	}
	if strings.Contains(dot, "subgraph") {
		t.Error("unclustered rendering emitted subgraphs")
	}
}

func TestDotClustersByPartition(t *testing.T) {
	p := dotProg(t)
	g := Build(p)
	// Alternate statements between two partitions; clusters must appear
	// in first-seen order with every node inside one.
	assign := make([]string, g.N)
	for i := range assign {
		if i%2 == 0 {
			assign[i] = "pre"
		} else {
			assign[i] = "non_off"
		}
	}
	dot := g.Dot(assign)
	preIdx := strings.Index(dot, `label="pre"`)
	srvIdx := strings.Index(dot, `label="non_off"`)
	if preIdx < 0 || srvIdx < 0 {
		t.Fatalf("missing partition clusters:\n%s", dot)
	}
	if preIdx > srvIdx {
		t.Error("clusters not in first-seen statement order")
	}
	if got := strings.Count(dot, "subgraph cluster_"); got != 2 {
		t.Errorf("want 2 clusters, got %d:\n%s", got, dot)
	}
	for i := 0; i < g.N; i++ {
		if !strings.Contains(dot, fmt.Sprintf("n%d [label=", i)) {
			t.Errorf("statement s%d missing from clustered rendering", i)
		}
	}
}

func TestInstrLabelFallsBackToKind(t *testing.T) {
	p := dotProg(t)
	// A statement ID outside the printed function falls back to the kind
	// name instead of returning an empty label.
	ghost := &ir.Instr{Kind: ir.Send, ID: 9999}
	if got := instrLabel(p.Fn, ghost); got != "send" {
		t.Errorf("fallback label = %q, want %q", got, "send")
	}
}

package deps

import (
	"strings"
	"testing"

	"gallium/internal/ir"
)

// buildMiniLB mirrors the paper's §4 running example; the expected
// dependency structure is Figure 3.
func buildMiniLB(t testing.TB) (*ir.Program, map[string]int) {
	connMap := &ir.Global{Name: "map", Kind: ir.KindMap, KeyTypes: []ir.Type{ir.U16}, ValTypes: []ir.Type{ir.U32}, MaxEntries: 65536}
	backends := &ir.Global{Name: "backends", Kind: ir.KindVec, ValTypes: []ir.Type{ir.U32}, MaxEntries: 16}

	b := ir.NewBuilder("process")
	ids := map[string]int{}
	mark := func(name string) {
		// Record the ID the next statement will get: count existing.
		n := 0
		for _, blk := range b.Fn().Blocks {
			n += len(blk.Instrs)
		}
		_ = n
	}
	_ = mark

	saddr := b.LoadHeader("saddr", "ip.saddr", ir.U32)
	daddr := b.LoadHeader("daddr", "ip.daddr", ir.U32)
	hash32 := b.BinOp("hash32", ir.Xor, saddr, daddr)
	maskC := b.Const("maskc", ir.U32, 0xFFFF)
	masked := b.BinOp("masked", ir.And, hash32, maskC)
	key := b.Convert("key", ir.U16, masked)
	found, vals := b.MapFind("bk", connMap, key)

	hit := b.NewBlock()
	miss := b.NewBlock()
	b.Branch(found, hit, miss)

	b.SetBlock(hit)
	b.StoreHeader("ip.daddr", vals[0])
	b.Send()

	b.SetBlock(miss)
	size := b.VecLen("size", backends)
	idx := b.BinOp("idx", ir.Mod, hash32, size)
	addr := b.VecGet("addr", backends, idx)
	b.StoreHeader("ip.daddr", addr)
	b.MapInsert(connMap, []ir.Reg{key}, []ir.Reg{addr})
	b.Send()

	fn := b.Fn()
	fn.Finalize()
	p := &ir.Program{Name: "minilb", Globals: []*ir.Global{connMap, backends}, Fn: fn}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Map statement names to IDs for assertions (walk in order).
	names := []string{"load_saddr", "load_daddr", "hash32", "maskc", "masked", "key",
		"find", "branch", "store_hit", "send_hit", "size", "idx", "vecget",
		"store_miss", "insert", "send_miss"}
	stmts := fn.Stmts()
	if len(stmts) != len(names) {
		t.Fatalf("stmt count %d != expected %d", len(stmts), len(names))
	}
	for i, n := range names {
		ids[n] = stmts[i].ID
	}
	return p, ids
}

func hasEdge(g *Graph, from, to int, kind EdgeKind) bool {
	for _, e := range g.Out[from] {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestDataDependencies(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)

	cases := []struct{ from, to string }{
		{"load_saddr", "hash32"},
		{"load_daddr", "hash32"},
		{"hash32", "masked"},
		{"masked", "key"},
		{"key", "find"},
		{"key", "insert"},
		{"hash32", "idx"},
		{"size", "idx"},
		{"idx", "vecget"},
		{"vecget", "store_miss"},
		{"vecget", "insert"},
		{"find", "branch"}, // branch reads the found flag
	}
	for _, c := range cases {
		if !hasEdge(g, ids[c.from], ids[c.to], EdgeData) {
			t.Errorf("missing data edge %s -> %s", c.from, c.to)
		}
	}
}

func TestGlobalStateDependencies(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)
	// find reads the map, insert writes it: find -> insert is an anti
	// (write-after-read) dependency.
	if !hasEdge(g, ids["find"], ids["insert"], EdgeAnti) {
		t.Error("missing anti edge find -> insert on map")
	}
	// No reverse edge: insert cannot happen before find on any path.
	if hasEdge(g, ids["insert"], ids["find"], EdgeData) {
		t.Error("unexpected data edge insert -> find")
	}
}

func TestHeaderDependencies(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)
	// store_hit writes ip.daddr which send_hit reads (send reads whole pkt).
	if !hasEdge(g, ids["store_hit"], ids["send_hit"], EdgeData) {
		t.Error("missing data edge store_hit -> send_hit")
	}
	// load_daddr reads ip.daddr, store_hit writes it: anti dependency.
	if !hasEdge(g, ids["load_daddr"], ids["store_hit"], EdgeAnti) {
		t.Error("missing anti edge load_daddr -> store_hit")
	}
	// Stores in different branch arms cannot happen after each other:
	// no WAW edge between store_hit and store_miss.
	if hasEdge(g, ids["store_hit"], ids["store_miss"], EdgeData) ||
		hasEdge(g, ids["store_miss"], ids["store_hit"], EdgeData) {
		t.Error("false WAW edge between exclusive branch arms")
	}
}

func TestControlDependencies(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)
	for _, s := range []string{"store_hit", "send_hit", "size", "idx", "vecget", "store_miss", "insert", "send_miss"} {
		if !hasEdge(g, ids["branch"], ids[s], EdgeControl) {
			t.Errorf("missing control edge branch -> %s", s)
		}
	}
	for _, s := range []string{"load_saddr", "hash32", "key", "find"} {
		if hasEdge(g, ids["branch"], ids[s], EdgeControl) {
			t.Errorf("unexpected control edge branch -> %s", s)
		}
	}
}

func TestDependsOnStarTransitive(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)
	star := g.DependsOnStar()
	// load_saddr ⇝* insert through hash32 -> masked -> key -> insert.
	if !star[ids["load_saddr"]][ids["insert"]] {
		t.Error("missing transitive dependence load_saddr ⇝* insert")
	}
	// Nothing depends on send_miss (last statement).
	for name, id := range ids {
		if star[ids["send_miss"]][id] {
			t.Errorf("%s should not depend on send_miss", name)
		}
	}
	// No cycles in a loop-free program.
	for name, id := range ids {
		if star[id][id] {
			t.Errorf("%s on a dependence cycle in loop-free program", name)
		}
	}
}

func TestLoopSelfDependence(t *testing.T) {
	// while (i < n) { i = i + 1 }  — the add statement writes a location
	// it reads on the next iteration, so it depends on itself.
	b := ir.NewBuilder("loop")
	g := &ir.Global{Name: "i", Kind: ir.KindScalar, ValTypes: []ir.Type{ir.U32}}
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Jump(head)
	b.SetBlock(head)
	iv := b.GlobalLoad("iv", g)
	n := b.Const("n", ir.U32, 10)
	c := b.BinOp("c", ir.Lt, iv, n)
	b.Branch(c, body, exit)
	b.SetBlock(body)
	iv2 := b.GlobalLoad("iv2", g)
	one := b.Const("one", ir.U32, 1)
	sum := b.BinOp("sum", ir.Add, iv2, one)
	b.GlobalStore(g, sum)
	b.Jump(head)
	b.SetBlock(exit)
	b.Send()
	fn := b.Fn()
	fn.Finalize()
	p := &ir.Program{Name: "loop", Globals: []*ir.Global{g}, Fn: fn}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dg := Build(p)
	star := dg.DependsOnStar()
	var storeID = -1
	for _, s := range fn.Stmts() {
		if s.Kind == ir.GlobalStore {
			storeID = s.ID
		}
	}
	if storeID < 0 {
		t.Fatal("no store found")
	}
	if !star[storeID][storeID] {
		t.Error("loop store must transitively depend on itself")
	}
}

func TestRWSetsSendReadsUniverse(t *testing.T) {
	p, _ := buildMiniLB(t)
	g := Build(p)
	// ip.saddr and ip.daddr are the universe.
	if len(g.HeaderUniverse) != 2 {
		t.Fatalf("universe = %v", g.HeaderUniverse)
	}
	var send *ir.Instr
	for _, s := range p.Fn.Stmts() {
		if s.Kind == ir.Send {
			send = s
			break
		}
	}
	reads, writes := RWSets(p, send, g.HeaderUniverse)
	if len(writes) != 0 {
		t.Errorf("send writes = %v", writes)
	}
	wantHdr := map[string]bool{"ip.saddr": false, "ip.daddr": false}
	payload := false
	for _, l := range reads {
		if l.Kind == LocHeader {
			wantHdr[l.Name] = true
		}
		if l.Kind == LocPayload {
			payload = true
		}
	}
	for f, ok := range wantHdr {
		if !ok {
			t.Errorf("send does not read %s", f)
		}
	}
	if !payload {
		t.Error("send does not read payload")
	}
}

func TestGlobalAccessedAndIsWrite(t *testing.T) {
	p, ids := buildMiniLB(t)
	stmts := p.Fn.Stmts()
	if GlobalAccessed(stmts[ids["find"]]) != "map" {
		t.Error("find should access map")
	}
	if GlobalAccessed(stmts[ids["vecget"]]) != "backends" {
		t.Error("vecget should access backends")
	}
	if GlobalAccessed(stmts[ids["hash32"]]) != "" {
		t.Error("hash32 accesses no global")
	}
	if IsGlobalWrite(stmts[ids["find"]]) {
		t.Error("find is not a write")
	}
	if !IsGlobalWrite(stmts[ids["insert"]]) {
		t.Error("insert is a write")
	}
}

func TestDotOutput(t *testing.T) {
	p, ids := buildMiniLB(t)
	g := Build(p)
	plain := g.Dot(nil)
	for _, want := range []string{"digraph deps", "style=solid", "style=dotted", "n%d ->"} {
		probe := want
		if want == "n%d ->" {
			probe = "->"
		}
		if !strings.Contains(plain, probe) {
			t.Errorf("dot output missing %q", probe)
		}
	}
	// Node labels carry the printed IR.
	if !strings.Contains(plain, "map.find") {
		t.Error("dot labels missing instruction text")
	}
	// Clustered form groups partitions.
	assign := make([]string, g.N)
	for i := range assign {
		assign[i] = "pre"
	}
	assign[ids["insert"]] = "non_off"
	clustered := g.Dot(assign)
	if !strings.Contains(clustered, "subgraph cluster_0") || !strings.Contains(clustered, `label="non_off"`) {
		t.Errorf("clustered dot missing partitions:\n%s", clustered[:400])
	}
}

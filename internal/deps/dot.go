package deps

import (
	"fmt"
	"strings"

	"gallium/internal/ir"
)

// Dot renders the program dependence graph in Graphviz format — the
// paper's Figure 3, generated. Nodes are statements (labelled with their
// printed IR); solid edges are data dependencies, dashed edges reverse
// (anti) dependencies, dotted edges control dependencies. When assign is
// non-nil (one partition name per statement, e.g. "pre"/"non_off"/"post"),
// nodes are clustered per partition like the paper's Figure 3 shading.
func (g *Graph) Dot(assign []string) string {
	var b strings.Builder
	b.WriteString("digraph deps {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	label := func(s *ir.Instr) string {
		txt := instrLabel(g.Fn, s)
		txt = strings.ReplaceAll(txt, `"`, `\"`)
		return fmt.Sprintf("s%d: %s", s.ID, txt)
	}

	if assign != nil {
		groups := map[string][]*ir.Instr{}
		var order []string
		for _, s := range g.Fn.Stmts() {
			p := assign[s.ID]
			if _, seen := groups[p]; !seen {
				order = append(order, p)
			}
			groups[p] = append(groups[p], s)
		}
		for i, p := range order {
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    style=filled;\n    color=lightgrey;\n", i, p)
			for _, s := range groups[p] {
				fmt.Fprintf(&b, "    n%d [label=%q];\n", s.ID, label(s))
			}
			b.WriteString("  }\n")
		}
	} else {
		for _, s := range g.Fn.Stmts() {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", s.ID, label(s))
		}
	}

	for from, edges := range g.Out {
		for _, e := range edges {
			style := "solid"
			switch e.Kind {
			case EdgeAnti:
				style = "dashed"
			case EdgeControl:
				style = "dotted"
			}
			fmt.Fprintf(&b, "  n%d -> n%d [style=%s];\n", from, e.To, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// instrLabel produces a compact one-line rendering of a statement by
// locating its line in the function printer's output (every line starts
// with the statement's "sNN" tag).
func instrLabel(fn *ir.Function, s *ir.Instr) string {
	tag := fmt.Sprintf("s%d", s.ID)
	for _, line := range strings.Split(fn.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > 1 && fields[0] == tag {
			return strings.Join(fields[1:], " ")
		}
	}
	return s.Kind.String()
}

// Package deps extracts statement-level dependencies from an IR program,
// implementing §4.1 of the Gallium paper: per-statement read and write
// sets (derived from instruction semantics plus data-structure
// annotations), the "can happen after" relation (CFG reachability), and a
// program dependence graph with data, reverse-data (anti), and control
// edges.
package deps

import (
	"fmt"

	"gallium/internal/cfg"
	"gallium/internal/ir"
)

// LocKind discriminates abstract memory locations.
type LocKind uint8

// Location kinds.
const (
	// LocReg is a virtual register.
	LocReg LocKind = iota
	// LocHeader is a packet header field (Name is the field path).
	LocHeader
	// LocPayload is the packet payload.
	LocPayload
	// LocGlobal is a named piece of global middlebox state.
	LocGlobal
	// LocXfer is a synthesized transfer variable (partitioned code only).
	LocXfer
)

// Loc is an abstract location a statement may read or write.
type Loc struct {
	Kind LocKind
	Reg  ir.Reg
	Name string
}

// String formats the location.
func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return fmt.Sprintf("r%d", l.Reg)
	case LocHeader:
		return "hdr:" + l.Name
	case LocPayload:
		return "payload"
	case LocGlobal:
		return "global:" + l.Name
	case LocXfer:
		return "xfer:" + l.Name
	}
	return "loc?"
}

func regLoc(r ir.Reg) Loc    { return Loc{Kind: LocReg, Reg: r} }
func headerLoc(f string) Loc { return Loc{Kind: LocHeader, Name: f} }

// aliasesTunMode reports whether a header field's effect is gated on the
// tunnel mode. Writing tun.mode attaches or strips the outer headers, so
// whether a tun.src/dst/key access takes effect depends on the last mode
// write: modeling each such access as also reading tun.mode gives the
// scheduler the RAW/WAR edges that keep them in program order. The
// tcp/udp/ip presence guards need no such edge — no IR instruction
// mutates those presence flags.
func aliasesTunMode(f string) bool {
	return len(f) > 4 && f[:4] == "tun." && f != "tun.mode"
}
func globalLoc(n string) Loc { return Loc{Kind: LocGlobal, Name: n} }
func payloadLoc() Loc        { return Loc{Kind: LocPayload} }
func xferLoc(n string) Loc   { return Loc{Kind: LocXfer, Name: n} }

// RWSets computes the read and write sets of one statement. headerUniverse
// lists every header field the program touches: Send conceptually reads
// the whole packet (the emitted bytes observe every header store), so its
// read set is the universe plus the payload.
func RWSets(p *ir.Program, in *ir.Instr, headerUniverse []string) (reads, writes []Loc) {
	readRegs := func(rs []ir.Reg) {
		for _, r := range rs {
			reads = append(reads, regLoc(r))
		}
	}
	writeRegs := func(rs []ir.Reg) {
		for _, r := range rs {
			writes = append(writes, regLoc(r))
		}
	}
	switch in.Kind {
	case ir.Const:
		writeRegs(in.Dst)
	case ir.BinOp, ir.Not, ir.Convert, ir.Hash:
		readRegs(in.Args)
		writeRegs(in.Dst)
	case ir.LoadHeader:
		reads = append(reads, headerLoc(in.Obj))
		if aliasesTunMode(in.Obj) {
			reads = append(reads, headerLoc("tun.mode"))
		}
		writeRegs(in.Dst)
	case ir.StoreHeader:
		readRegs(in.Args)
		writes = append(writes, headerLoc(in.Obj))
		if aliasesTunMode(in.Obj) {
			reads = append(reads, headerLoc("tun.mode"))
		}
	case ir.PayloadMatch:
		reads = append(reads, payloadLoc())
		writeRegs(in.Dst)
	case ir.MapFind, ir.LpmFind:
		readRegs(in.Args)
		reads = append(reads, globalLoc(in.Obj))
		writeRegs(in.Dst)
	case ir.MapInsert, ir.MapRemove:
		readRegs(in.Args)
		writes = append(writes, globalLoc(in.Obj))
	case ir.VecGet, ir.VecLen:
		readRegs(in.Args)
		reads = append(reads, globalLoc(in.Obj))
		writeRegs(in.Dst)
	case ir.GlobalLoad:
		reads = append(reads, globalLoc(in.Obj))
		writeRegs(in.Dst)
	case ir.GlobalStore:
		readRegs(in.Args)
		writes = append(writes, globalLoc(in.Obj))
	case ir.XferLoad:
		reads = append(reads, xferLoc(in.Obj))
		writeRegs(in.Dst)
	case ir.XferStore:
		readRegs(in.Args)
		writes = append(writes, xferLoc(in.Obj))
	case ir.Branch:
		readRegs(in.Args)
	case ir.Send:
		// The emitted packet observes every header field and the payload.
		for _, f := range headerUniverse {
			reads = append(reads, headerLoc(f))
		}
		reads = append(reads, payloadLoc())
	case ir.Jump, ir.Drop, ir.ToNext:
		// No data accesses.
	}
	return reads, writes
}

// EdgeKind labels dependence edges.
type EdgeKind uint8

// Dependence kinds, as in the paper's §4.1 taxonomy.
const (
	// EdgeData is a true data dependency: S1 writes state S2 reads or
	// writes (read-after-write, write-after-write).
	EdgeData EdgeKind = iota
	// EdgeAnti is a reverse data dependency: S1 reads state S2 writes
	// (write-after-read).
	EdgeAnti
	// EdgeControl is a control dependency: S1's branch decides whether S2
	// executes.
	EdgeControl
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeAnti:
		return "anti"
	case EdgeControl:
		return "control"
	}
	return "edge?"
}

// Edge is one dependence: To depends on the edge's source.
type Edge struct {
	To   int
	Kind EdgeKind
}

// Graph is the program dependence graph at statement granularity. Out[i]
// lists edges i → j meaning "statement j depends on statement i" (j must
// run after i).
type Graph struct {
	Prog *ir.Program
	Fn   *ir.Function
	N    int
	Out  [][]Edge

	// Reads and Writes cache each statement's location sets.
	Reads, Writes [][]Loc
	// HeaderUniverse is every header field the program mentions.
	HeaderUniverse []string

	star       [][]bool
	pos        []stmtPos
	blockReach [][]bool
}

type stmtPos struct{ blk, idx int }

// CanHappenAfter reports the paper's §4.1 relation: some execution trace
// runs s2 after s1.
func (g *Graph) CanHappenAfter(s1, s2 int) bool {
	p1, p2 := g.pos[s1], g.pos[s2]
	if p1.blk == p2.blk && p2.idx > p1.idx {
		return true
	}
	return g.blockReach[p1.blk][p2.blk]
}

// Build constructs the dependence graph for the program's function.
func Build(p *ir.Program) *Graph {
	fn := p.Fn
	g := &Graph{Prog: p, Fn: fn, N: fn.NumStmts}
	g.Out = make([][]Edge, g.N)
	g.HeaderUniverse = headerUniverse(fn)

	stmts := fn.Stmts()
	g.Reads = make([][]Loc, g.N)
	g.Writes = make([][]Loc, g.N)
	for i, s := range stmts {
		g.Reads[i], g.Writes[i] = RWSets(p, s, g.HeaderUniverse)
	}

	// "Can happen after": S2 can happen after S1 when S2 is reachable from
	// S1 in the CFG (§4.1). Block-level reachability plus intra-block
	// order.
	graph := cfg.New(fn)
	g.blockReach = graph.Reachable()
	g.pos = make([]stmtPos, g.N)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			g.pos[b.Instrs[i].ID] = stmtPos{b.ID, i}
		}
		g.pos[b.Term.ID] = stmtPos{b.ID, len(b.Instrs)}
	}
	canHappenAfter := g.CanHappenAfter

	overlaps := func(a, b []Loc) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
			}
		}
		return false
	}

	// Data and anti dependencies over all ordered pairs.
	for s1 := 0; s1 < g.N; s1++ {
		for s2 := 0; s2 < g.N; s2++ {
			if !canHappenAfter(s1, s2) {
				continue
			}
			// RAW or WAW: S1 writes what S2 reads or writes.
			if overlaps(g.Writes[s1], g.Reads[s2]) || overlaps(g.Writes[s1], g.Writes[s2]) {
				g.addEdge(s1, s2, EdgeData)
			} else if overlaps(g.Reads[s1], g.Writes[s2]) {
				// WAR: S1 reads what S2 writes.
				g.addEdge(s1, s2, EdgeAnti)
			}
		}
	}

	// Control dependencies: every statement in block B depends on the
	// branch terminators B is control dependent on.
	cds := graph.ControlDeps()
	for _, b := range fn.Blocks {
		for _, brBlk := range cds[b.ID] {
			brStmt := fn.Blocks[brBlk].Term.ID
			for i := range b.Instrs {
				g.addEdge(brStmt, b.Instrs[i].ID, EdgeControl)
			}
			if b.Term.ID != brStmt {
				g.addEdge(brStmt, b.Term.ID, EdgeControl)
			} else {
				// A loop branch controls its own re-execution.
				g.addEdge(brStmt, brStmt, EdgeControl)
			}
		}
	}
	return g
}

func (g *Graph) addEdge(from, to int, k EdgeKind) {
	for _, e := range g.Out[from] {
		if e.To == to && e.Kind == k {
			return
		}
	}
	g.Out[from] = append(g.Out[from], Edge{To: to, Kind: k})
}

// headerUniverse collects every header field mentioned by the function.
func headerUniverse(fn *ir.Function) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range fn.Stmts() {
		if s.Kind == ir.LoadHeader || s.Kind == ir.StoreHeader {
			if !seen[s.Obj] {
				seen[s.Obj] = true
				out = append(out, s.Obj)
			}
		}
	}
	return out
}

// DependsOnStar returns the reflexive-free transitive closure: star[i][j]
// is true when j transitively depends on i (i ⇝* j through one or more
// edges). star[i][i] is true only when i lies on a dependence cycle.
func (g *Graph) DependsOnStar() [][]bool {
	if g.star != nil {
		return g.star
	}
	star := make([][]bool, g.N)
	for i := 0; i < g.N; i++ {
		star[i] = make([]bool, g.N)
		stack := make([]int, 0, 8)
		for _, e := range g.Out[i] {
			stack = append(stack, e.To)
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if star[i][v] {
				continue
			}
			star[i][v] = true
			for _, e := range g.Out[v] {
				stack = append(stack, e.To)
			}
		}
	}
	g.star = star
	return star
}

// GlobalAccessed returns the name of the global state a statement touches,
// or "" when it touches none.
func GlobalAccessed(in *ir.Instr) string {
	switch in.Kind {
	case ir.MapFind, ir.MapInsert, ir.MapRemove, ir.VecGet, ir.VecLen, ir.GlobalLoad, ir.GlobalStore, ir.LpmFind:
		return in.Obj
	}
	return ""
}

// IsGlobalWrite reports whether the statement mutates global state. The
// partitioner never offloads these: replicated state is updated only by
// the server (§4.3.3), and P4 tables are read-only for the data plane
// (§2.1).
func IsGlobalWrite(in *ir.Instr) bool {
	switch in.Kind {
	case ir.MapInsert, ir.MapRemove, ir.GlobalStore:
		return true
	}
	return false
}

package netsim

import (
	"container/heap"
	"fmt"
	"math"
)

// The realistic-workload experiments (Figures 8 and 9) run 100,000 flows
// from 100 worker threads, each sending one connection at a time (§6.3).
// Packet-level simulation of that is needlessly expensive; the fluid
// engine below models each flow as
//
//	latency phase:  per-flow setup (slow-path packets, state sync under
//	                output commit) plus TCP slow-start rounds at the
//	                deployment's RTT, then
//	transfer phase: processor sharing of the deployment's bottleneck
//	                bandwidth (the 100 Gbps link for offloaded data
//	                packets; the server's packet-processing capacity for
//	                the software baseline).
//
// The per-deployment parameters (setup, RTT, bottleneck) are measured from
// the packet-level testbed, not assumed.

// FluidConfig parameterizes one fluid run.
type FluidConfig struct {
	// Workers is the number of concurrent senders (the paper uses 100).
	Workers int
	// BottleneckBps is the shared data-path capacity.
	BottleneckBps float64
	// SetupNs is the fixed per-flow latency before data flows.
	SetupNs float64
	// RTTNs drives TCP slow-start rounds.
	RTTNs float64
	// MSS and InitWindow shape slow start.
	MSS        int
	InitWindow int
	// MaxRounds caps the windowing phase (the window saturates).
	MaxRounds int
}

// DefaultFluidConfig fills in the protocol constants.
func DefaultFluidConfig() FluidConfig {
	return FluidConfig{Workers: 100, MSS: 1460, InitWindow: 10, MaxRounds: 12}
}

// FlowRecord is one completed flow.
type FlowRecord struct {
	Size  int64
	FCTNs int64
}

// FluidStats summarizes a run.
type FluidStats struct {
	Records    []FlowRecord
	TotalBytes int64
	MakespanNs int64
}

// ThroughputBps is aggregate goodput over the run.
func (s FluidStats) ThroughputBps() float64 {
	if s.MakespanNs == 0 {
		return 0
	}
	return float64(s.TotalBytes) * 8 / (float64(s.MakespanNs) / 1e9)
}

// slowStartRounds returns the number of RTTs spent growing the window
// before size bytes are covered.
func (c FluidConfig) slowStartRounds(size int64) int {
	packets := int((size + int64(c.MSS) - 1) / int64(c.MSS))
	if packets <= 0 {
		packets = 1
	}
	sent := 0
	w := c.InitWindow
	rounds := 0
	for sent < packets && rounds < c.MaxRounds {
		sent += w
		w *= 2
		rounds++
	}
	return rounds
}

type fluidFlow struct {
	worker    int
	size      int64
	startNs   float64
	targetCum float64 // completes when cumService reaches this
	index     int     // heap index
}

type completionHeap []*fluidFlow

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].targetCum < h[j].targetCum }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *completionHeap) Push(x interface{}) {
	f := x.(*fluidFlow)
	f.index = len(*h)
	*h = append(*h, f)
}
func (h *completionHeap) Pop() interface{} {
	old := *h
	f := old[len(old)-1]
	*h = old[:len(old)-1]
	return f
}

type arrival struct {
	atNs float64
	flow *fluidFlow
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].atNs < h[j].atNs }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	a := old[len(old)-1]
	*h = old[:len(old)-1]
	return a
}

// RunFluid simulates the workers draining their per-worker flow lists.
// flows[w] holds worker w's flow sizes in order.
func RunFluid(cfg FluidConfig, flows [][]int64) (FluidStats, error) {
	if cfg.Workers <= 0 || cfg.BottleneckBps <= 0 {
		return FluidStats{}, fmt.Errorf("netsim: fluid config incomplete: %+v", cfg)
	}
	bytesPerNs := cfg.BottleneckBps / 8 / 1e9

	var (
		now      float64
		cum      float64 // bytes of service each active flow has received
		active   completionHeap
		arrivals arrivalHeap
		next     = make([]int, len(flows)) // per-worker next flow index
		stats    FluidStats
	)

	latency := func(size int64) float64 {
		return cfg.SetupNs + float64(cfg.slowStartRounds(size))*cfg.RTTNs
	}
	startNext := func(w int, at float64) {
		if next[w] >= len(flows[w]) {
			return
		}
		size := flows[w][next[w]]
		next[w]++
		f := &fluidFlow{worker: w, size: size, startNs: at}
		heap.Push(&arrivals, arrival{atNs: at + latency(size), flow: f})
	}
	for w := range flows {
		startNext(w, 0)
	}

	for len(active) > 0 || len(arrivals) > 0 {
		// Next completion time under the current share.
		nextCompletion := math.Inf(1)
		if len(active) > 0 {
			rate := bytesPerNs / float64(len(active))
			nextCompletion = now + (active[0].targetCum-cum)/rate
		}
		nextArrival := math.Inf(1)
		if len(arrivals) > 0 {
			nextArrival = arrivals[0].atNs
		}
		if nextArrival <= nextCompletion {
			// Advance shared service to the arrival instant.
			if len(active) > 0 {
				cum += (nextArrival - now) * bytesPerNs / float64(len(active))
			}
			now = nextArrival
			a := heap.Pop(&arrivals).(arrival)
			a.flow.targetCum = cum + float64(a.flow.size)
			heap.Push(&active, a.flow)
			continue
		}
		cum += (nextCompletion - now) * bytesPerNs / float64(len(active))
		now = nextCompletion
		f := heap.Pop(&active).(*fluidFlow)
		stats.Records = append(stats.Records, FlowRecord{Size: f.size, FCTNs: int64(now - f.startNs)})
		stats.TotalBytes += f.size
		startNext(f.worker, now)
	}
	stats.MakespanNs = int64(now)
	return stats, nil
}

// BinFCT averages flow completion times into the paper's Figure 9 bins:
// 0-100 KB, 100 KB-10 MB, >10 MB.
func BinFCT(records []FlowRecord) (avgNs [3]float64, counts [3]int) {
	var sums [3]float64
	for _, r := range records {
		var b int
		switch {
		case r.Size <= 100_000:
			b = 0
		case r.Size <= 10_000_000:
			b = 1
		default:
			b = 2
		}
		sums[b] += float64(r.FCTNs)
		counts[b]++
	}
	for i := range sums {
		if counts[i] > 0 {
			avgNs[i] = sums[i] / float64(counts[i])
		}
	}
	return avgNs, counts
}

package netsim

import (
	"math"
	"testing"

	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

func buildTestbed(t *testing.T, name string, mode Mode, cores int) *Testbed {
	t.Helper()
	spec, err := middleboxes.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: DefaultModel(),
		Mode:  mode,
		Cores: cores,
		Prog:  prog,
		Setup: func(st *ir.State) { middleboxes.ConfigureState(name, st) },
	}
	if mode == Offloaded {
		res, err := partition.Partition(prog, partition.DefaultConstraints())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Res = res
	}
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestCostModelCtlBatchMatchesTable3(t *testing.T) {
	m := DefaultModel()
	cases := []struct {
		n      int
		wantUs float64
		tolUs  float64
	}{
		{1, 135, 25}, // Table 3: 135.2 ± 22.0 µs
		{2, 270, 35}, // 270.1 ± 33.0
		{4, 371, 40}, // 371.0 ± 39.2
	}
	for _, c := range cases {
		got := m.CtlBatchNs(c.n) / 1000
		if math.Abs(got-c.wantUs) > c.tolUs {
			t.Errorf("CtlBatch(%d) = %.1f µs, want %.1f ± %.1f", c.n, got, c.wantUs, c.tolUs)
		}
	}
	if m.CtlBatchNs(0) != 0 {
		t.Error("empty batch must be free")
	}
}

func TestLatencyFastVsSlowPath(t *testing.T) {
	tb := buildTestbed(t, "minilb", Offloaded, 1)

	// First packet: slow path (miss), includes the sync stall.
	p1 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{Flags: packet.TCPFlagSYN})
	d1, err := tb.Inject(0, p1)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Delivered || d1.FastPath {
		t.Fatalf("first packet: %+v, want slow-path delivery", d1)
	}
	// Output commit: the slow packet waits for the 1-entry sync (~135 µs).
	if d1.LatencyNs < 130_000 {
		t.Errorf("slow-path latency %d ns should include the sync stall", d1.LatencyNs)
	}

	// After the sync, the same connection takes the fast path.
	p2 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{})
	d2, err := tb.Inject(400_000, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.FastPath {
		t.Fatal("second packet should be fast after sync")
	}
	// Fast-path latency ≈ Table 2's Gallium numbers (±1 µs).
	if d2.LatencyNs < 14_000 || d2.LatencyNs > 18_000 {
		t.Errorf("fast-path latency = %.1f µs, want ≈ 16 µs", float64(d2.LatencyNs)/1000)
	}
}

func TestSoftwareLatencyMatchesTable2(t *testing.T) {
	tb := buildTestbed(t, "minilb", Software, 1)
	// Warm the connection table first.
	p0 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{Flags: packet.TCPFlagSYN})
	if _, err := tb.Inject(0, p0); err != nil {
		t.Fatal(err)
	}
	p := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{})
	d, err := tb.Inject(1_000_000, p)
	if err != nil {
		t.Fatal(err)
	}
	// FastClick latencies in Table 2 cluster at 22-23 µs.
	if d.LatencyNs < 20_000 || d.LatencyNs > 26_000 {
		t.Errorf("software latency = %.1f µs, want ≈ 22-23 µs", float64(d.LatencyNs)/1000)
	}
}

func TestOutOfOrderInjectionRejected(t *testing.T) {
	tb := buildTestbed(t, "minilb", Offloaded, 1)
	p := packet.BuildTCP(1, 2, 3, 4, packet.TCPOptions{})
	if _, err := tb.Inject(100, p.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Inject(50, p.Clone()); err == nil {
		t.Fatal("want error for out-of-order injection")
	}
}

func TestServerQueueSaturation(t *testing.T) {
	// Offer far more than one software core can process; the queue must
	// overflow and the delivered rate must settle at the core's capacity.
	tb := buildTestbed(t, "minilb", Software, 1)
	m := DefaultModel()
	pktSize := 200
	offered := 5e6 // 5 Mpps at ~1.4k cycles/pkt >> 1 core
	interval := 1e9 / offered
	n := 30000
	// Warm one connection so processing is uniform fast-hit work.
	for i := 0; i < n; i++ {
		p := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{})
		p.PadTo(pktSize)
		if _, err := tb.Inject(int64(float64(i)*interval), p); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("no queue drops under overload")
	}
	// Delivered pps should sit at the single-core service rate, which we
	// derive from the measured per-packet cycles.
	durS := float64(st.LastDeliverNs-st.FirstDeliverNs) / 1e9
	deliveredPps := float64(st.Delivered) / durS
	avgCycles := st.ServerCycles / float64(st.SlowPath)
	capacityPps := m.CoreHz / avgCycles
	if deliveredPps > capacityPps*1.15 || deliveredPps < capacityPps*0.7 {
		t.Errorf("delivered %.2f Mpps, single-core capacity ≈ %.2f Mpps", deliveredPps/1e6, capacityPps/1e6)
	}
}

func TestMultiCoreScaling(t *testing.T) {
	// Same overload, 4 cores: should deliver roughly 4x the packets of 1
	// core (many flows spread across cores via RSS).
	run := func(cores int) int {
		tb := buildTestbed(t, "firewall", Software, cores)
		// Allow all generated flows.
		setup := tb.sft.State
		interval := 1e9 / 14e6 // well above 4-core capacity
		n := 20000
		for i := 0; i < n; i++ {
			sport := uint16(1000 + i%64)
			src := packet.MakeIPv4Addr(10, 0, 0, byte(1+i%32))
			tup := packet.FiveTuple{SrcIP: src, DstIP: packet.MakeIPv4Addr(9, 9, 9, 9), SrcPort: sport, DstPort: 80, Proto: packet.IPProtocolTCP}
			middleboxes.AllowFlow(setup, tup)
			p := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
			p.PadTo(200)
			if _, err := tb.Inject(int64(float64(i)*interval), p); err != nil {
				t.Fatal(err)
			}
		}
		return tb.Stats().Delivered
	}
	d1 := run(1)
	d4 := run(4)
	ratio := float64(d4) / float64(d1)
	if ratio < 2.5 || ratio > 4.6 {
		t.Errorf("4-core/1-core delivered ratio = %.2f, want ≈ 4 (RSS imbalance allowed)", ratio)
	}
}

func TestOffloadedSkipsServer(t *testing.T) {
	tb := buildTestbed(t, "proxy", Offloaded, 1)
	// Proxy forwards unregistered ports entirely on the switch.
	for i := 0; i < 100; i++ {
		p := packet.BuildTCP(packet.MakeIPv4Addr(1, 1, 1, 1), packet.MakeIPv4Addr(2, 2, 2, 2), uint16(1000+i), 22, packet.TCPOptions{})
		if _, err := tb.Inject(int64(i)*10_000, p); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.Stats()
	if st.FastPath != 100 || st.SlowPath != 0 {
		t.Errorf("stats = %+v, want 100%% fast path", st)
	}
	if st.ServerCycles != 0 {
		t.Errorf("server cycles = %f, want 0", st.ServerCycles)
	}
}

func TestFluidProcessorSharing(t *testing.T) {
	cfg := DefaultFluidConfig()
	cfg.Workers = 2
	cfg.BottleneckBps = 8e9 // 1 GB/s
	cfg.RTTNs = 0
	cfg.SetupNs = 0
	cfg.MaxRounds = 0
	// Two equal flows sharing 1 GB/s: each runs at 500 MB/s, both finish
	// at 2 ms (1 MB each).
	flows := [][]int64{{1_000_000}, {1_000_000}}
	st, err := RunFluid(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != 2 {
		t.Fatalf("records = %d", len(st.Records))
	}
	for _, r := range st.Records {
		if math.Abs(float64(r.FCTNs)-2e6) > 1e3 {
			t.Errorf("FCT = %d ns, want ≈ 2 ms", r.FCTNs)
		}
	}
	if math.Abs(st.ThroughputBps()-8e9) > 1e8 {
		t.Errorf("throughput = %.2g, want 8e9", st.ThroughputBps())
	}
}

func TestFluidShortVsLongFlow(t *testing.T) {
	cfg := DefaultFluidConfig()
	cfg.Workers = 2
	cfg.BottleneckBps = 8e9
	cfg.RTTNs = 0
	cfg.SetupNs = 0
	cfg.MaxRounds = 0
	flows := [][]int64{{100_000}, {10_000_000}}
	st, err := RunFluid(cfg, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Short flow: shares until it completes at 2×100KB/1GBps = 200 µs.
	// Long flow: 200 µs of half rate + remaining 9.9 MB at full rate.
	var short, long FlowRecord
	for _, r := range st.Records {
		if r.Size == 100_000 {
			short = r
		} else {
			long = r
		}
	}
	if math.Abs(float64(short.FCTNs)-200e3) > 2e3 {
		t.Errorf("short FCT = %d, want ≈ 200 µs", short.FCTNs)
	}
	wantLong := 200e3 + (10e6-100e3)/1.0e0/1e0 // remaining bytes at 1 GB/s => ns
	wantLong = 200e3 + (10e6-100e3)/1.0        // bytes / (1 byte/ns)
	if math.Abs(float64(long.FCTNs)-wantLong) > 1e4 {
		t.Errorf("long FCT = %d, want ≈ %.0f", long.FCTNs, wantLong)
	}
}

func TestFluidSetupDelaysThroughput(t *testing.T) {
	// Many small flows with setup cost: throughput collapses vs no setup.
	sizes := make([]int64, 2000)
	for i := range sizes {
		sizes[i] = 10_000
	}
	mk := func(setup float64) float64 {
		cfg := DefaultFluidConfig()
		cfg.Workers = 10
		cfg.BottleneckBps = 100e9
		cfg.SetupNs = setup
		cfg.RTTNs = 16_000
		flows := make([][]int64, 10)
		for i, s := range sizes {
			flows[i%10] = append(flows[i%10], s)
		}
		st, err := RunFluid(cfg, flows)
		if err != nil {
			t.Fatal(err)
		}
		return st.ThroughputBps()
	}
	with := mk(300_000)
	without := mk(0)
	if with >= without {
		t.Errorf("setup cost did not reduce throughput: %.2g vs %.2g", with, without)
	}
}

func TestBinFCT(t *testing.T) {
	records := []FlowRecord{
		{Size: 50_000, FCTNs: 100},
		{Size: 50_000, FCTNs: 300},
		{Size: 1_000_000, FCTNs: 1000},
		{Size: 50_000_000, FCTNs: 9000},
	}
	avg, counts := BinFCT(records)
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if avg[0] != 200 || avg[1] != 1000 || avg[2] != 9000 {
		t.Errorf("avgs = %v", avg)
	}
}

func TestSlowStartRounds(t *testing.T) {
	cfg := DefaultFluidConfig()
	if r := cfg.slowStartRounds(1000); r != 1 {
		t.Errorf("1 KB: rounds = %d, want 1", r)
	}
	if r := cfg.slowStartRounds(15 * 1460); r != 2 {
		t.Errorf("15 pkts: rounds = %d, want 2 (10 then 20)", r)
	}
	small := cfg.slowStartRounds(100_000)
	big := cfg.slowStartRounds(100_000_000)
	if small >= big && big != cfg.MaxRounds {
		t.Errorf("rounds not monotone: %d vs %d", small, big)
	}
	if big > cfg.MaxRounds {
		t.Errorf("rounds exceed cap: %d", big)
	}
}

func TestCacheModePuntsInTestbed(t *testing.T) {
	spec, err := middleboxes.Lookup("minilb")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := partition.DefaultConstraints()
	c.CacheEntries = map[string]int{"conn": 8}
	res, err := partition.Partition(prog, c)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(Config{
		Model: DefaultModel(), Mode: Offloaded, Cores: 1, Res: res, Prog: prog,
		Setup: func(st *ir.State) { middleboxes.ConfigureState("minilb", st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// One connection: first packet punts (cold cache) but must NOT stall
	// on synchronization — the conn insert and the read-through fill are
	// both cache fills.
	mk := func() *packet.Packet {
		return packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 7, 80, packet.TCPOptions{})
	}
	d1, err := tb.Inject(0, mk())
	if err != nil {
		t.Fatal(err)
	}
	if d1.FastPath {
		t.Fatal("cold cache cannot be fast")
	}
	if d1.LatencyNs > 100_000 {
		t.Errorf("punted packet stalled %.0f µs; cache fills must not output-commit", float64(d1.LatencyNs)/1000)
	}
	// After the fill propagates (~135 µs control-plane latency), the
	// connection is switch-resident.
	d2, err := tb.Inject(400_000, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !d2.FastPath {
		t.Fatal("warmed cache should serve the second packet")
	}
	st := tb.Stats()
	if st.SlowPath != 1 {
		t.Errorf("slow path count = %d, want 1", st.SlowPath)
	}
}

func TestTableOverflowDegradesGracefully(t *testing.T) {
	// A 4-entry connection table with 40 concurrent connections: the
	// switch fills up, further inserts are rejected, and the overflow
	// connections simply keep taking the slow path — no failures.
	src := `
middlebox tiny {
    map<u32,u16 -> u8> conns(max = 4);
    proc process(pkt p) {
        let c = conns.find(p.ip.saddr, p.tcp.sport);
        if (c.ok) {
            send(p);
        } else {
            conns.insert(p.ip.saddr, p.tcp.sport, 1);
            send(p);
        }
    }
}
`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(Config{Model: DefaultModel(), Mode: Offloaded, Cores: 1, Res: res, Prog: prog})
	if err != nil {
		t.Fatal(err)
	}
	tNs := int64(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			p := packet.BuildTCP(packet.IPv4Addr(i), 2, uint16(i), 80, packet.TCPOptions{})
			d, err := tb.Inject(tNs, p)
			if err != nil {
				t.Fatalf("round %d conn %d: %v", round, i, err)
			}
			if !d.Delivered {
				t.Fatalf("round %d conn %d not delivered", round, i)
			}
			tNs += 500_000
		}
	}
	st := tb.Stats()
	if st.CtlRejected == 0 {
		t.Error("no control-plane rejections despite a 4-entry table and 40 connections")
	}
	if sws, ok := tb.SwitchStats(); ok {
		if sws.TableEntries["conns"] > 4 {
			t.Errorf("switch table exceeded capacity: %d", sws.TableEntries["conns"])
		}
	}
	// The four resident connections should be fast by round 2+.
	if st.FastPath == 0 {
		t.Error("resident connections never took the fast path")
	}
}

// TestFluidMatchesPacketLevel cross-validates the two simulation engines:
// an uncontended flow driven packet by packet through the testbed must
// complete in about the time the fluid engine predicts from the same
// measured parameters.
func TestFluidMatchesPacketLevel(t *testing.T) {
	tb := buildTestbed(t, "minilb", Offloaded, 1)
	tup := packet.FiveTuple{
		SrcIP: packet.MakeIPv4Addr(1, 2, 3, 4), DstIP: packet.MakeIPv4Addr(9, 9, 9, 9),
		SrcPort: 1000, DstPort: 80, Proto: packet.IPProtocolTCP,
	}
	drv := &FlowDriver{TB: tb, MSS: 1460, InitWindow: 10}
	const size = 3_000_000 // 3 MB
	got, err := drv.Run(0, tup, size)
	if err != nil {
		t.Fatal(err)
	}

	// Fluid prediction with the same parameters: the SYN pays the sync
	// stall (~135 µs + slow path), data rides the fast path at ~16 µs RTT
	// and drains at line rate.
	m := DefaultModel()
	fc := DefaultFluidConfig()
	fc.Workers = 1
	fc.BottleneckBps = m.LineRateBps
	fc.SetupNs = 135_000 + 25_000 // sync + slow-path first packet
	fc.RTTNs = 32_000             // ~2x one-way fast path
	fl, err := RunFluid(fc, [][]int64{{size}})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(fl.Records[0].FCTNs)
	have := float64(got.FCTNs)
	ratio := have / want
	t.Logf("packet-level FCT = %.0f µs, fluid FCT = %.0f µs (ratio %.2f, %d packets, %d rounds)",
		have/1000, want/1000, ratio, got.Packets, got.Rounds)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("engines disagree by %.2fx", ratio)
	}
}

func TestModeZeroDefaultsToOffloaded(t *testing.T) {
	// A zero-Mode config (e.g. built from TestbedConfig{}) must run the
	// offloaded deployment, even though Mode(0) itself is "unset".
	spec, err := middleboxes.Lookup("firewall")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(Config{Model: DefaultModel(), Res: res, Prog: prog})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.SwitchStats(); !ok {
		t.Fatal("zero Mode did not build the offloaded deployment")
	}
	if _, err := NewTestbed(Config{Model: DefaultModel(), Mode: Mode(7), Res: res, Prog: prog}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRSSShardSymmetricAndBounded(t *testing.T) {
	fwd := packet.BuildTCP(packet.MakeIPv4Addr(10, 0, 0, 1), packet.MakeIPv4Addr(20, 0, 0, 2), 1234, 80, packet.TCPOptions{})
	rev := packet.BuildTCP(packet.MakeIPv4Addr(20, 0, 0, 2), packet.MakeIPv4Addr(10, 0, 0, 1), 80, 1234, packet.TCPOptions{})
	for _, n := range []int{1, 2, 4, 8} {
		f, r := RSSShard(fwd, n), RSSShard(rev, n)
		if f != r {
			t.Errorf("n=%d: directions land on different shards (%d vs %d)", n, f, r)
		}
		if f < 0 || f >= n {
			t.Errorf("n=%d: shard %d out of range", n, f)
		}
	}
	if got := RSSShard(fwd, 0); got != 0 {
		t.Errorf("RSSShard(_, 0) = %d, want 0", got)
	}
}

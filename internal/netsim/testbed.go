package netsim

import (
	"errors"
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/serverrt"
	"gallium/internal/switchsim"
)

// Mode selects the deployment under test. The zero Mode is "unset": it
// defaults to Offloaded when a testbed or engine is built from it, and is
// what ParseMode returns alongside an error — so an ignored parse error
// can never be mistaken for an explicit mode choice.
type Mode int

// Deployment modes.
const (
	// Offloaded runs the Gallium-compiled switch+server pair.
	Offloaded Mode = iota + 1
	// Software runs the unpartitioned middlebox on the server (the
	// FastClick baseline), with the switch as a plain forwarder.
	Software
)

// String implements fmt.Stringer for flag defaults and error messages.
func (m Mode) String() string {
	switch m {
	case Offloaded:
		return "offloaded"
	case Software:
		return "software"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config describes one testbed instance.
type Config struct {
	Model CostModel
	Mode  Mode
	// Cores is the middlebox server core count (the baseline sweeps 1/2/4;
	// the offloaded middlebox uses a single core, as in the paper).
	Cores int
	// Res is required in Offloaded mode.
	Res *partition.Result
	// Prog is required in Software mode.
	Prog *ir.Program
	// Setup seeds middlebox state.
	Setup func(st *ir.State)
	// Obs, when non-nil, receives metrics from every component and (when
	// tracing is enabled on it) per-packet hop traces. Nil disables
	// observability at zero cost.
	Obs *obs.Registry
}

// Delivery reports one packet's fate.
type Delivery struct {
	// Delivered is true when the packet reached the destination host.
	Delivered bool
	// MBDropped means the middlebox's logic dropped it (e.g. firewall).
	MBDropped bool
	// QueueDropped means the server ingress queue overflowed.
	QueueDropped bool
	// FastPath means the switch handled it without the server.
	FastPath bool
	// Time the packet reached the destination (ns).
	DeliverNs int64
	// LatencyNs is end-to-end (application to application).
	LatencyNs int64
}

// Stats aggregates a run.
type Stats struct {
	Injected   int
	Delivered  int
	MBDrops    int
	QueueDrops int
	FastPath   int
	SlowPath   int
	// CtlRejected counts control-plane updates refused because the
	// switch table was full; the flows stay server-handled.
	CtlRejected  int
	BytesIn      int64
	BytesOut     int64
	ServerCycles float64
	CtlBatches   int
	CtlOps       int
	// FirstDeliverNs/LastDeliverNs frame the measurement window.
	FirstDeliverNs, LastDeliverNs int64
}

// ThroughputBps is delivered goodput over the delivery window.
func (s Stats) ThroughputBps() float64 {
	if s.LastDeliverNs <= s.FirstDeliverNs {
		return 0
	}
	return float64(s.BytesOut) * 8 / (float64(s.LastDeliverNs-s.FirstDeliverNs) / 1e9)
}

// pendingFlip is a control-plane visibility flip scheduled for the future.
type pendingFlip struct {
	atNs int64
}

// Testbed is the packet-level simulator: a time-ordered, single-pass model
// of the Figure 1 topology. Packets must be injected in non-decreasing
// timestamp order; queueing at the server is modeled with per-core
// next-free times and the control plane with deferred visibility flips.
type Testbed struct {
	cfg Config

	sw  *switchsim.Switch
	srv *serverrt.Server
	sft *serverrt.Software

	coreFreeNs []int64
	flips      []pendingFlip
	lastInject int64
	// jitterState drives deterministic endpoint-stack latency noise.
	jitterState uint64

	stats Stats

	reg   *obs.Registry
	c     testbedCounters
	hLat  *obs.Histogram // end-to-end latency, all delivered packets
	hFast *obs.Histogram // fast-path (switch-only) subset
	hSlow *obs.Histogram // slow-path (server-visited) subset
	hWait *obs.Histogram // server ingress queue wait
	// hStall is the output-commit stall: time a packet is held past server
	// completion waiting for its write-back batch to flip (§4.3.3).
	hStall   *obs.Histogram
	corePkts []*obs.Counter
	coreBusy []*obs.Counter
	// tracer is resolved once at build time, like every other handle, so
	// the per-packet path never touches the registry mutex. Enable tracing
	// on the registry before constructing the testbed.
	tracer *obs.TraceRecorder
}

// testbedCounters are the end-to-end counters.
type testbedCounters struct {
	injected, delivered     *obs.Counter
	mbDrops, queueDrops     *obs.Counter
	ctlRejected, ctlStalled *obs.Counter
}

// instrument wires the registry through every component and resolves the
// testbed's own handles.
func (tb *Testbed) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	tb.reg = reg
	if tb.sw != nil {
		tb.sw.Instrument(reg)
	}
	if tb.srv != nil {
		tb.srv.Instrument(reg)
	}
	if tb.sft != nil {
		tb.sft.Instrument(reg)
	}
	tb.c = testbedCounters{
		injected:    reg.Counter("e2e.injected"),
		delivered:   reg.Counter("e2e.delivered"),
		mbDrops:     reg.Counter("e2e.mb_drops"),
		queueDrops:  reg.Counter("e2e.queue_drops"),
		ctlRejected: reg.Counter("e2e.ctl_rejected"),
		ctlStalled:  reg.Counter("switch.ctl.stalled_packets"),
	}
	tb.hFast = reg.Histogram("e2e.latency_ns.fast", nil)
	tb.hSlow = reg.Histogram("e2e.latency_ns.slow", nil)
	// Every delivered packet is either fast or slow, so the all-packets
	// histogram is a read-time merge — one observation per delivery.
	tb.hLat = reg.MergedHistogram("e2e.latency_ns", tb.hFast, tb.hSlow)
	tb.hWait = reg.Histogram("server.queue.wait_ns", nil)
	tb.hStall = reg.Histogram("switch.ctl.stall_ns", nil)
	tb.tracer = reg.Tracer()
	tb.corePkts = make([]*obs.Counter, len(tb.coreFreeNs))
	tb.coreBusy = make([]*obs.Counter, len(tb.coreFreeNs))
	for i := range tb.coreFreeNs {
		tb.corePkts[i] = reg.Counter(fmt.Sprintf("core.%d.packets", i))
		tb.coreBusy[i] = reg.Counter(fmt.Sprintf("core.%d.busy_ns", i))
	}
}

// traceStart opens a hop trace for the packet if the registry has tracing
// enabled and capacity left.
func (tb *Testbed) traceStart(tNs int64, pkt *packet.Packet) *obs.Trace {
	if tb.tracer == nil {
		return nil
	}
	summary := "packet"
	if tup, ok := pkt.Tuple(); ok {
		summary = tup.String()
	}
	tr := tb.tracer.Start(summary)
	tr.Hop("inject", tNs)
	return tr
}

// serveCore accounts one slow-path packet's service on its core.
func (tb *Testbed) serveCore(core int, waitNs, serviceNs int64) {
	if tb.reg == nil {
		return
	}
	tb.corePkts[core].Inc()
	tb.coreBusy[core].Add(uint64(serviceNs))
	tb.hWait.Observe(waitNs)
}

// stackNs returns the endpoint stack latency with deterministic jitter
// (an xorshift stream scaled into ±StackJitterFrac/2).
func (tb *Testbed) stackNs() float64 {
	m := tb.cfg.Model
	if m.StackJitterFrac == 0 {
		return m.EndpointStackNs
	}
	x := tb.jitterState*2862933555777941757 + 3037000493
	tb.jitterState = x
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return m.EndpointStackNs * (1 + m.StackJitterFrac*(u-0.5))
}

// NewTestbed builds and configures a testbed.
func NewTestbed(cfg Config) (*Testbed, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Mode == 0 {
		cfg.Mode = Offloaded
	}
	tb := &Testbed{cfg: cfg, coreFreeNs: make([]int64, cfg.Cores)}
	switch cfg.Mode {
	case Offloaded:
		if cfg.Res == nil {
			return nil, fmt.Errorf("netsim: offloaded mode needs a partition result")
		}
		tb.sw = switchsim.New(cfg.Res)
		tb.srv = serverrt.New(cfg.Res)
		if cfg.Setup != nil {
			cfg.Setup(tb.srv.State)
			if err := tb.sw.SeedFrom(tb.srv.State); err != nil {
				return nil, err
			}
		}
	case Software:
		if cfg.Prog == nil {
			return nil, fmt.Errorf("netsim: software mode needs a program")
		}
		tb.sft = serverrt.NewSoftware(cfg.Prog)
		if cfg.Setup != nil {
			cfg.Setup(tb.sft.State)
		}
	default:
		return nil, fmt.Errorf("netsim: unknown mode %v", cfg.Mode)
	}
	tb.instrument(cfg.Obs)
	return tb, nil
}

// Reconfigure applies one control-plane change to the sequential testbed
// between injections: mutate runs against the authoritative server state
// (returning any extra switch updates, e.g. connection purges), then the
// given updates plus mutate's are staged and flipped as one batch. It is
// the oracle counterpart of the engine's Reconfigure — differential tests
// apply the same change at the same packet index on both sides. Any
// write-back still awaiting its scheduled flip shares the batch (a
// sequential reconfiguration quiesces the deployment).
func (tb *Testbed) Reconfigure(mutate func(st *ir.State) []switchsim.Update, updates []switchsim.Update) error {
	all := append([]switchsim.Update(nil), updates...)
	if mutate != nil {
		all = append(all, mutate(tb.ServerState())...)
	}
	if tb.sw == nil {
		return nil
	}
	for _, u := range all {
		if err := tb.sw.StageWriteback(u); err != nil {
			if errors.Is(err, switchsim.ErrTableFull) {
				tb.stats.CtlRejected++
				tb.c.ctlRejected.Inc()
				continue
			}
			return err
		}
	}
	tb.sw.FlipVisibility()
	tb.sw.MergeWriteback()
	tb.sw.MarkReconfig()
	tb.stats.CtlBatches++
	tb.flips = tb.flips[:0]
	return nil
}

// applyFlips makes all control-plane batches whose flip time has passed
// visible to the data plane.
func (tb *Testbed) applyFlips(nowNs int64) {
	kept := tb.flips[:0]
	for _, f := range tb.flips {
		if f.atNs <= nowNs {
			tb.sw.FlipVisibility()
			tb.sw.MergeWriteback()
			tb.stats.CtlBatches++
		} else {
			kept = append(kept, f)
		}
	}
	tb.flips = kept
}

// Inject runs one packet through the testbed, starting from the source
// application at time tNs. Packets must arrive in time order.
func (tb *Testbed) Inject(tNs int64, pkt *packet.Packet) (Delivery, error) {
	if tNs < tb.lastInject {
		return Delivery{}, fmt.Errorf("netsim: out-of-order injection (%d < %d)", tNs, tb.lastInject)
	}
	tb.lastInject = tNs
	tb.stats.Injected++
	tb.c.injected.Inc()
	size := pkt.WireLen()
	tb.stats.BytesIn += int64(size)
	m := tb.cfg.Model
	tr := tb.traceStart(tNs, pkt)

	// Source stack + first link.
	t := float64(tNs) + tb.stackNs() + m.SerializationNs(size) + m.LinkPropNs

	if tb.cfg.Mode == Software {
		return tb.injectSoftware(tNs, int64(t), pkt, tr)
	}

	// Switch pre-processing pass.
	tb.applyFlips(int64(t))
	preHop := tr.Hop("switch-pre", int64(t))
	tb.sw.TraceHop(preHop)
	pre, err := tb.sw.ProcessPre(pkt)
	tb.sw.TraceHop(nil)
	if err != nil {
		return Delivery{}, err
	}
	preHop.SetSteps(pre.Steps)
	t += m.SwitchPipelineNs
	if pre.Punt {
		preHop.SetAction("punt")
		return tb.injectPunt(tNs, t, pkt, tr)
	}
	preHop.SetAction(pre.Action.String())
	switch pre.Action {
	case ir.ActionDropped:
		tb.stats.MBDrops++
		tb.stats.FastPath++
		tb.c.mbDrops.Inc()
		tr.Hop("drop", int64(t)).SetNote("middlebox drop on switch")
		return Delivery{MBDropped: true, FastPath: true}, nil
	case ir.ActionSent:
		tb.stats.FastPath++
		return tb.deliver(tNs, t, pkt, true, tr)
	}

	// Slow path: switch → server link, server queue, service.
	tb.stats.SlowPath++
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	core := RSSShard(pkt, len(tb.coreFreeNs))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		tb.c.queueDrops.Inc()
		tr.Hop("drop", start).SetNote("server queue overflow")
		return Delivery{QueueDropped: true}, nil
	}

	rx, err := packet.DecodePacket(pkt.Serialize(), tb.cfg.Res.FormatA)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: server rx: %w", err)
	}
	srvHop := tr.Hop("server", start)
	srvRes, err := tb.srv.Process(rx)
	if err != nil {
		return Delivery{}, err
	}
	srvHop.SetSteps(srvRes.Steps)
	srvHop.SetAction(srvRes.Action.String())
	if srvHop != nil && start > arrive {
		srvHop.SetNote(fmt.Sprintf("queued %.2fµs on core %d", float64(start-arrive)/1000, core))
	}
	// The core is busy only for the CPU service time; the fixed datapath
	// latency (NIC, PCIe, DPDK polling) is pipelined on top.
	busyUntil := start + int64(m.ServerServiceNs(srvRes.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(srvRes.Steps)
	tb.serveCore(core, start-arrive, busyUntil-start)

	release := done
	if len(srvRes.Updates) > 0 {
		// Stage now (invisible), flip later; output commit holds the
		// packet until the flip (§4.3.3). A full table is a soft failure:
		// that entry simply never reaches the switch.
		staged := 0
		for _, u := range srvRes.Updates {
			if err := tb.sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					tb.stats.CtlRejected++
					tb.c.ctlRejected.Inc()
					continue
				}
				return Delivery{}, err
			}
			staged++
		}
		if staged > 0 {
			tb.stats.CtlOps += staged
			flipAt := done + int64(m.CtlBatchNs(staged))
			tb.flips = append(tb.flips, pendingFlip{atNs: flipAt})
			release = flipAt
		}
	}
	if release > done {
		// Output commit held the packet until its write-back batch flipped.
		tb.c.ctlStalled.Inc()
		tb.hStall.Observe(release - done)
		if srvHop != nil {
			srvHop.SetNote(fmt.Sprintf("output commit stalled %.2fµs", float64(release-done)/1000))
		}
	}

	switch srvRes.Action {
	case ir.ActionDropped:
		tb.stats.MBDrops++
		tb.c.mbDrops.Inc()
		tr.Hop("drop", done).SetNote("middlebox drop on server")
		return Delivery{MBDropped: true}, nil
	case ir.ActionSent:
		// Server-owned terminator: back through the switch as plain
		// forwarding.
		tRel := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
		*pkt = *rx
		return tb.deliver(tNs, tRel, pkt, false, tr)
	}

	// Back to the switch for post-processing.
	tBack := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs
	tb.applyFlips(int64(tBack))
	back, err := packet.DecodePacket(rx.Serialize(), tb.cfg.Res.FormatB)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: switch rx from server: %w", err)
	}
	postHop := tr.Hop("switch-post", int64(tBack))
	tb.sw.TraceHop(postHop)
	post, err := tb.sw.ProcessPost(back)
	tb.sw.TraceHop(nil)
	if err != nil {
		return Delivery{}, err
	}
	postHop.SetSteps(post.Steps)
	postHop.SetAction(post.Action.String())
	tBack += m.SwitchPipelineNs
	*pkt = *back
	if post.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		tb.c.mbDrops.Inc()
		tr.Hop("drop", int64(tBack)).SetNote("middlebox drop on switch post-pass")
		return Delivery{MBDropped: true}, nil
	}
	return tb.deliver(tNs, tBack, pkt, false, tr)
}

// injectPunt handles a §7 cache-mode punt: the unmodified packet goes to
// the server, which runs the full middlebox. Cache fills do not stall the
// packet; synchronous updates do (output commit).
func (tb *Testbed) injectPunt(tNs int64, t float64, pkt *packet.Packet, tr *obs.Trace) (Delivery, error) {
	m := tb.cfg.Model
	tb.stats.SlowPath++
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	core := RSSShard(pkt, len(tb.coreFreeNs))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		tb.c.queueDrops.Inc()
		tr.Hop("drop", start).SetNote("server queue overflow")
		return Delivery{QueueDropped: true}, nil
	}
	rx, err := packet.DecodePacket(pkt.Serialize(), nil)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: server rx (punt): %w", err)
	}
	srvHop := tr.Hop("server-full", start)
	res, err := tb.srv.ProcessFull(rx)
	if err != nil {
		return Delivery{}, err
	}
	srvHop.SetSteps(res.Steps)
	srvHop.SetAction(res.Action.String())
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(res.Steps)
	tb.serveCore(core, start-arrive, busyUntil-start)

	release := done
	fills, syncs := serverrt.ClassifyUpdates(tb.sw, res.Updates)
	if len(fills)+len(syncs) > 0 {
		staged := 0
		for _, u := range append(fills, syncs...) {
			if err := tb.sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					tb.stats.CtlRejected++
					tb.c.ctlRejected.Inc()
					continue
				}
				return Delivery{}, err
			}
			staged++
		}
		if staged > 0 {
			tb.stats.CtlOps += staged
			flipAt := done + int64(m.CtlBatchNs(staged))
			tb.flips = append(tb.flips, pendingFlip{atNs: flipAt})
			if len(syncs) > 0 {
				// Output commit: only authoritative-visible changes stall.
				release = flipAt
			}
		}
	}
	if release > done {
		tb.c.ctlStalled.Inc()
		tb.hStall.Observe(release - done)
		if srvHop != nil {
			srvHop.SetNote(fmt.Sprintf("output commit stalled %.2fµs", float64(release-done)/1000))
		}
	}
	if res.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		tb.c.mbDrops.Inc()
		tr.Hop("drop", done).SetNote("middlebox drop on server")
		return Delivery{MBDropped: true}, nil
	}
	// Back out through the switch as plain forwarding.
	tOut := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	*pkt = *rx
	return tb.deliver(tNs, tOut, pkt, false, tr)
}

func (tb *Testbed) injectSoftware(tNs int64, arriveSwitch int64, pkt *packet.Packet, tr *obs.Trace) (Delivery, error) {
	m := tb.cfg.Model
	// Plain forwarding through the switch to the server.
	t := float64(arriveSwitch) + m.SwitchPipelineNs + m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	core := RSSShard(pkt, len(tb.coreFreeNs))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		tb.c.queueDrops.Inc()
		tr.Hop("drop", start).SetNote("server queue overflow")
		return Delivery{QueueDropped: true}, nil
	}
	srvHop := tr.Hop("server", start)
	res, err := tb.sft.Process(pkt)
	if err != nil {
		return Delivery{}, err
	}
	srvHop.SetSteps(res.Steps)
	srvHop.SetAction(res.Action.String())
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(res.Steps)
	tb.stats.SlowPath++
	tb.serveCore(core, start-arrive, busyUntil-start)
	if res.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		tb.c.mbDrops.Inc()
		tr.Hop("drop", done).SetNote("middlebox drop on server")
		return Delivery{MBDropped: true}, nil
	}
	tOut := float64(done) + m.SerializationNs(pkt.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	return tb.deliver(tNs, tOut, pkt, false, tr)
}

// deliver carries the packet over the final link into the sink host.
func (tb *Testbed) deliver(tInject int64, t float64, pkt *packet.Packet, fast bool, tr *obs.Trace) (Delivery, error) {
	m := tb.cfg.Model
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs + tb.stackNs()
	d := Delivery{Delivered: true, FastPath: fast, DeliverNs: int64(t), LatencyNs: int64(t) - tInject}
	tb.stats.Delivered++
	tb.stats.BytesOut += int64(pkt.WireLen())
	if tb.stats.FirstDeliverNs == 0 || d.DeliverNs < tb.stats.FirstDeliverNs {
		tb.stats.FirstDeliverNs = d.DeliverNs
	}
	if d.DeliverNs > tb.stats.LastDeliverNs {
		tb.stats.LastDeliverNs = d.DeliverNs
	}
	if tb.reg != nil {
		tb.c.delivered.Inc()
		// hLat is the read-time merge of the two, so one observation
		// covers both views.
		if fast {
			tb.hFast.Observe(d.LatencyNs)
		} else {
			tb.hSlow.Observe(d.LatencyNs)
		}
	}
	if tr != nil { // guard: the Sprintf must not run on the untraced path
		tr.Hop("deliver", d.DeliverNs).SetNote(fmt.Sprintf("latency %.2fµs", float64(d.LatencyNs)/1000))
	}
	return d, nil
}

// Stats returns the run counters so far.
func (tb *Testbed) Stats() Stats { return tb.stats }

// ServerState exposes the authoritative middlebox state: the server's in
// offloaded mode, the software runner's otherwise. Callers must not
// mutate it while injections are in flight.
func (tb *Testbed) ServerState() *ir.State {
	if tb.srv != nil {
		return tb.srv.State
	}
	if tb.sft != nil {
		return tb.sft.State
	}
	return nil
}

// SwitchStats exposes the switch counters (offloaded mode only).
func (tb *Testbed) SwitchStats() (switchsim.Stats, bool) {
	if tb.sw == nil {
		return switchsim.Stats{}, false
	}
	return tb.sw.Stats(), true
}

// rssHash steers a packet to a server core, keeping both directions of a
// connection together (symmetric hash), like NIC RSS.
func rssHash(pkt *packet.Packet) uint64 {
	if tup, ok := pkt.DispatchTuple(); ok {
		return tup.SymmetricHash()
	}
	return uint64(pkt.IP.SrcIP) * 2654435761
}

// RSSShard maps a packet to one of n shards the way NIC RSS steers flows
// to cores: a symmetric flow hash, so both directions of a connection land
// on the same shard. The testbed's core model and the concurrent engine's
// dispatcher share this function — a flow is served by the same (simulated
// or real) core in either world.
func RSSShard(pkt *packet.Packet, n int) int {
	if n <= 1 {
		return 0
	}
	return int(rssHash(pkt) % uint64(n))
}

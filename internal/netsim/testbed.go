package netsim

import (
	"errors"
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/serverrt"
	"gallium/internal/switchsim"
)

// Mode selects the deployment under test.
type Mode int

// Deployment modes.
const (
	// Offloaded runs the Gallium-compiled switch+server pair.
	Offloaded Mode = iota
	// Software runs the unpartitioned middlebox on the server (the
	// FastClick baseline), with the switch as a plain forwarder.
	Software
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Offloaded {
		return "offloaded"
	}
	return "software"
}

// Config describes one testbed instance.
type Config struct {
	Model CostModel
	Mode  Mode
	// Cores is the middlebox server core count (the baseline sweeps 1/2/4;
	// the offloaded middlebox uses a single core, as in the paper).
	Cores int
	// Res is required in Offloaded mode.
	Res *partition.Result
	// Prog is required in Software mode.
	Prog *ir.Program
	// Setup seeds middlebox state.
	Setup func(st *ir.State)
}

// Delivery reports one packet's fate.
type Delivery struct {
	// Delivered is true when the packet reached the destination host.
	Delivered bool
	// MBDropped means the middlebox's logic dropped it (e.g. firewall).
	MBDropped bool
	// QueueDropped means the server ingress queue overflowed.
	QueueDropped bool
	// FastPath means the switch handled it without the server.
	FastPath bool
	// Time the packet reached the destination (ns).
	DeliverNs int64
	// LatencyNs is end-to-end (application to application).
	LatencyNs int64
}

// Stats aggregates a run.
type Stats struct {
	Injected   int
	Delivered  int
	MBDrops    int
	QueueDrops int
	FastPath   int
	SlowPath   int
	// CtlRejected counts control-plane updates refused because the
	// switch table was full; the flows stay server-handled.
	CtlRejected  int
	BytesIn      int64
	BytesOut     int64
	ServerCycles float64
	CtlBatches   int
	CtlOps       int
	// FirstDeliverNs/LastDeliverNs frame the measurement window.
	FirstDeliverNs, LastDeliverNs int64
}

// ThroughputBps is delivered goodput over the delivery window.
func (s Stats) ThroughputBps() float64 {
	if s.LastDeliverNs <= s.FirstDeliverNs {
		return 0
	}
	return float64(s.BytesOut) * 8 / (float64(s.LastDeliverNs-s.FirstDeliverNs) / 1e9)
}

// pendingFlip is a control-plane visibility flip scheduled for the future.
type pendingFlip struct {
	atNs int64
}

// Testbed is the packet-level simulator: a time-ordered, single-pass model
// of the Figure 1 topology. Packets must be injected in non-decreasing
// timestamp order; queueing at the server is modeled with per-core
// next-free times and the control plane with deferred visibility flips.
type Testbed struct {
	cfg Config

	sw  *switchsim.Switch
	srv *serverrt.Server
	sft *serverrt.Software

	coreFreeNs []int64
	flips      []pendingFlip
	lastInject int64
	// jitterState drives deterministic endpoint-stack latency noise.
	jitterState uint64

	stats Stats
}

// stackNs returns the endpoint stack latency with deterministic jitter
// (an xorshift stream scaled into ±StackJitterFrac/2).
func (tb *Testbed) stackNs() float64 {
	m := tb.cfg.Model
	if m.StackJitterFrac == 0 {
		return m.EndpointStackNs
	}
	x := tb.jitterState*2862933555777941757 + 3037000493
	tb.jitterState = x
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return m.EndpointStackNs * (1 + m.StackJitterFrac*(u-0.5))
}

// NewTestbed builds and configures a testbed.
func NewTestbed(cfg Config) (*Testbed, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	tb := &Testbed{cfg: cfg, coreFreeNs: make([]int64, cfg.Cores)}
	switch cfg.Mode {
	case Offloaded:
		if cfg.Res == nil {
			return nil, fmt.Errorf("netsim: offloaded mode needs a partition result")
		}
		tb.sw = switchsim.New(cfg.Res)
		tb.srv = serverrt.New(cfg.Res)
		if cfg.Setup != nil {
			cfg.Setup(tb.srv.State)
			if err := tb.seedSwitch(); err != nil {
				return nil, err
			}
		}
	case Software:
		if cfg.Prog == nil {
			return nil, fmt.Errorf("netsim: software mode needs a program")
		}
		tb.sft = serverrt.NewSoftware(cfg.Prog)
		if cfg.Setup != nil {
			cfg.Setup(tb.sft.State)
		}
	}
	return tb, nil
}

// seedSwitch copies configured replicated state onto the switch (initial
// table contents install through the ordinary control plane, but before
// traffic starts, so they are immediately merged).
func (tb *Testbed) seedSwitch() error {
	res := tb.cfg.Res
	for _, gn := range res.OffloadedGlobals {
		g := res.Prog.Global(gn)
		switch g.Kind {
		case ir.KindVec:
			if err := tb.sw.LoadVector(gn, tb.srv.State.Vecs[gn]); err != nil {
				return err
			}
		case ir.KindMap:
			for k, v := range tb.srv.State.Maps[gn] {
				if err := tb.sw.StageWriteback(switchsim.Update{Table: gn, Key: k, Vals: v}); err != nil {
					return err
				}
			}
		case ir.KindScalar:
			if err := tb.sw.StageWriteback(switchsim.Update{Register: gn, RegVal: tb.srv.State.Globals[gn]}); err != nil {
				return err
			}
		case ir.KindLPM:
			if err := tb.sw.LoadLPM(gn, tb.srv.State.Lpms[gn]); err != nil {
				return err
			}
		}
	}
	tb.sw.FlipVisibility()
	tb.sw.MergeWriteback()
	return nil
}

// applyFlips makes all control-plane batches whose flip time has passed
// visible to the data plane.
func (tb *Testbed) applyFlips(nowNs int64) {
	kept := tb.flips[:0]
	for _, f := range tb.flips {
		if f.atNs <= nowNs {
			tb.sw.FlipVisibility()
			tb.sw.MergeWriteback()
			tb.stats.CtlBatches++
		} else {
			kept = append(kept, f)
		}
	}
	tb.flips = kept
}

// Inject runs one packet through the testbed, starting from the source
// application at time tNs. Packets must arrive in time order.
func (tb *Testbed) Inject(tNs int64, pkt *packet.Packet) (Delivery, error) {
	if tNs < tb.lastInject {
		return Delivery{}, fmt.Errorf("netsim: out-of-order injection (%d < %d)", tNs, tb.lastInject)
	}
	tb.lastInject = tNs
	tb.stats.Injected++
	size := pkt.WireLen()
	tb.stats.BytesIn += int64(size)
	m := tb.cfg.Model

	// Source stack + first link.
	t := float64(tNs) + tb.stackNs() + m.SerializationNs(size) + m.LinkPropNs

	if tb.cfg.Mode == Software {
		return tb.injectSoftware(tNs, int64(t), pkt)
	}

	// Switch pre-processing pass.
	tb.applyFlips(int64(t))
	pre, err := tb.sw.ProcessPre(pkt)
	if err != nil {
		return Delivery{}, err
	}
	t += m.SwitchPipelineNs
	if pre.Punt {
		return tb.injectPunt(tNs, t, pkt)
	}
	switch pre.Action {
	case ir.ActionDropped:
		tb.stats.MBDrops++
		tb.stats.FastPath++
		return Delivery{MBDropped: true, FastPath: true}, nil
	case ir.ActionSent:
		tb.stats.FastPath++
		return tb.deliver(tNs, t, pkt, true)
	}

	// Slow path: switch → server link, server queue, service.
	tb.stats.SlowPath++
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	tupleHash := rssHash(pkt)
	core := int(tupleHash % uint64(len(tb.coreFreeNs)))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		return Delivery{QueueDropped: true}, nil
	}

	rx, err := packet.DecodePacket(pkt.Serialize(), tb.cfg.Res.FormatA)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: server rx: %w", err)
	}
	srvRes, err := tb.srv.Process(rx)
	if err != nil {
		return Delivery{}, err
	}
	// The core is busy only for the CPU service time; the fixed datapath
	// latency (NIC, PCIe, DPDK polling) is pipelined on top.
	busyUntil := start + int64(m.ServerServiceNs(srvRes.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(srvRes.Steps)

	release := done
	if len(srvRes.Updates) > 0 {
		// Stage now (invisible), flip later; output commit holds the
		// packet until the flip (§4.3.3). A full table is a soft failure:
		// that entry simply never reaches the switch.
		staged := 0
		for _, u := range srvRes.Updates {
			if err := tb.sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					tb.stats.CtlRejected++
					continue
				}
				return Delivery{}, err
			}
			staged++
		}
		if staged > 0 {
			tb.stats.CtlOps += staged
			flipAt := done + int64(m.CtlBatchNs(staged))
			tb.flips = append(tb.flips, pendingFlip{atNs: flipAt})
			release = flipAt
		}
	}

	switch srvRes.Action {
	case ir.ActionDropped:
		tb.stats.MBDrops++
		return Delivery{MBDropped: true}, nil
	case ir.ActionSent:
		// Server-owned terminator: back through the switch as plain
		// forwarding.
		tRel := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
		*pkt = *rx
		return tb.deliver(tNs, tRel, pkt, false)
	}

	// Back to the switch for post-processing.
	tBack := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs
	tb.applyFlips(int64(tBack))
	back, err := packet.DecodePacket(rx.Serialize(), tb.cfg.Res.FormatB)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: switch rx from server: %w", err)
	}
	post, err := tb.sw.ProcessPost(back)
	if err != nil {
		return Delivery{}, err
	}
	tBack += m.SwitchPipelineNs
	*pkt = *back
	if post.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		return Delivery{MBDropped: true}, nil
	}
	return tb.deliver(tNs, tBack, pkt, false)
}

// injectPunt handles a §7 cache-mode punt: the unmodified packet goes to
// the server, which runs the full middlebox. Cache fills do not stall the
// packet; synchronous updates do (output commit).
func (tb *Testbed) injectPunt(tNs int64, t float64, pkt *packet.Packet) (Delivery, error) {
	m := tb.cfg.Model
	tb.stats.SlowPath++
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	core := int(rssHash(pkt) % uint64(len(tb.coreFreeNs)))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		return Delivery{QueueDropped: true}, nil
	}
	rx, err := packet.DecodePacket(pkt.Serialize(), nil)
	if err != nil {
		return Delivery{}, fmt.Errorf("netsim: server rx (punt): %w", err)
	}
	res, err := tb.srv.ProcessFull(rx)
	if err != nil {
		return Delivery{}, err
	}
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(res.Steps)

	release := done
	fills, syncs := serverrt.ClassifyUpdates(tb.sw, res.Updates)
	if len(fills)+len(syncs) > 0 {
		staged := 0
		for _, u := range append(fills, syncs...) {
			if err := tb.sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					tb.stats.CtlRejected++
					continue
				}
				return Delivery{}, err
			}
			staged++
		}
		if staged > 0 {
			tb.stats.CtlOps += staged
			flipAt := done + int64(m.CtlBatchNs(staged))
			tb.flips = append(tb.flips, pendingFlip{atNs: flipAt})
			if len(syncs) > 0 {
				// Output commit: only authoritative-visible changes stall.
				release = flipAt
			}
		}
	}
	if res.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		return Delivery{MBDropped: true}, nil
	}
	// Back out through the switch as plain forwarding.
	tOut := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	*pkt = *rx
	return tb.deliver(tNs, tOut, pkt, false)
}

func (tb *Testbed) injectSoftware(tNs int64, arriveSwitch int64, pkt *packet.Packet) (Delivery, error) {
	m := tb.cfg.Model
	// Plain forwarding through the switch to the server.
	t := float64(arriveSwitch) + m.SwitchPipelineNs + m.SerializationNs(pkt.WireLen()) + m.LinkPropNs
	core := int(rssHash(pkt) % uint64(len(tb.coreFreeNs)))
	arrive := int64(t)
	start := arrive
	if tb.coreFreeNs[core] > start {
		start = tb.coreFreeNs[core]
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		tb.stats.QueueDrops++
		return Delivery{QueueDropped: true}, nil
	}
	res, err := tb.sft.Process(pkt)
	if err != nil {
		return Delivery{}, err
	}
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	tb.coreFreeNs[core] = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	tb.stats.ServerCycles += m.ServerCycles(res.Steps)
	tb.stats.SlowPath++
	if res.Action == ir.ActionDropped {
		tb.stats.MBDrops++
		return Delivery{MBDropped: true}, nil
	}
	tOut := float64(done) + m.SerializationNs(pkt.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	return tb.deliver(tNs, tOut, pkt, false)
}

// deliver carries the packet over the final link into the sink host.
func (tb *Testbed) deliver(tInject int64, t float64, pkt *packet.Packet, fast bool) (Delivery, error) {
	m := tb.cfg.Model
	t += m.SerializationNs(pkt.WireLen()) + m.LinkPropNs + tb.stackNs()
	d := Delivery{Delivered: true, FastPath: fast, DeliverNs: int64(t), LatencyNs: int64(t) - tInject}
	tb.stats.Delivered++
	tb.stats.BytesOut += int64(pkt.WireLen())
	if tb.stats.FirstDeliverNs == 0 || d.DeliverNs < tb.stats.FirstDeliverNs {
		tb.stats.FirstDeliverNs = d.DeliverNs
	}
	if d.DeliverNs > tb.stats.LastDeliverNs {
		tb.stats.LastDeliverNs = d.DeliverNs
	}
	return d, nil
}

// Stats returns the run counters so far.
func (tb *Testbed) Stats() Stats { return tb.stats }

// SwitchStats exposes the switch counters (offloaded mode only).
func (tb *Testbed) SwitchStats() (switchsim.Stats, bool) {
	if tb.sw == nil {
		return switchsim.Stats{}, false
	}
	return tb.sw.Stats(), true
}

// rssHash steers a packet to a server core, keeping both directions of a
// connection together (symmetric hash), like NIC RSS.
func rssHash(pkt *packet.Packet) uint64 {
	if tup, ok := pkt.Tuple(); ok {
		return tup.SymmetricHash()
	}
	return uint64(pkt.IP.SrcIP) * 2654435761
}

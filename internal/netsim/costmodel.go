// Package netsim models the paper's testbed (§6.3): three servers and a
// Tofino switch on 100 Gbps links, with a DPDK middlebox server. It
// provides a packet-level simulator for the microbenchmarks (Figure 7,
// Tables 2-3) and a flow-level fluid engine for the 100k-flow realistic
// workloads (Figures 8-9).
//
// Absolute costs are calibrated so the *software baseline* reproduces the
// paper's measurements (≈22-23 µs end-to-end latency through FastClick,
// ≈100 Gbps with 4 cores at 1500-byte packets); the offloaded results then
// follow from the mechanisms, not from tuning.
package netsim

// CostModel collects the calibrated constants.
type CostModel struct {
	// CoreHz is the middlebox server clock (Intel Xeon E5-2680: 2.5 GHz).
	CoreHz float64
	// PerPacketCycles is the fixed per-packet server cost (DPDK rx/tx,
	// framework dispatch).
	PerPacketCycles float64
	// PerStepCycles converts executed IR statements to cycles.
	PerStepCycles float64
	// LineRateBps is the link speed (100 Gbps).
	LineRateBps float64
	// LinkPropNs is per-hop propagation plus PHY latency.
	LinkPropNs float64
	// SwitchPipelineNs is one traversal of the match-action pipeline.
	SwitchPipelineNs float64
	// EndpointStackNs is the traffic endpoints' Linux network stack cost
	// (the paper's generator/receiver machines use the kernel stack).
	EndpointStackNs float64
	// ServerDatapathNs is the middlebox server's fixed datapath latency
	// (NIC, PCIe, DPDK polling) per slow-path packet.
	ServerDatapathNs float64
	// CtlOpSerialNs and CtlOpPipelinedNs model control-plane table
	// updates (Table 3): the first two tables update serially, further
	// ones overlap.
	CtlOpSerialNs    float64
	CtlOpPipelinedNs float64
	// GenMaxPps caps the traffic generators' aggregate packet rate (the
	// paper's iperf endpoints cannot source 100 Gbps of minimum-size
	// packets).
	GenMaxPps float64
	// MaxQueueDelayNs bounds the server ingress queue; arrivals that
	// would wait longer are dropped (finite NIC ring).
	MaxQueueDelayNs float64
	// MTUBytes caps packet payloads.
	MTUBytes int
	// StackJitterFrac is the relative spread of the endpoint stacks'
	// latency (kernel scheduling noise); the paper's Table 2 standard
	// deviations (±0.2-0.9 µs) come from exactly this source.
	StackJitterFrac float64
}

// DefaultModel returns the calibrated testbed constants.
func DefaultModel() CostModel {
	return CostModel{
		CoreHz:           2.5e9,
		PerPacketCycles:  1200,
		PerStepCycles:    18,
		LineRateBps:      100e9,
		LinkPropNs:       300,
		SwitchPipelineNs: 800,
		EndpointStackNs:  7250,
		ServerDatapathNs: 4800,
		CtlOpSerialNs:    135_000,
		CtlOpPipelinedNs: 50_500,
		GenMaxPps:        12e6,
		MaxQueueDelayNs:  500_000,
		MTUBytes:         1500,
		StackJitterFrac:  0.04,
	}
}

// ServerCycles converts an executed-statement count into server cycles.
func (m CostModel) ServerCycles(steps int) float64 {
	return m.PerPacketCycles + m.PerStepCycles*float64(steps)
}

// ServerServiceNs is the CPU service time for a packet whose processing
// executed the given number of statements.
func (m CostModel) ServerServiceNs(steps int) float64 {
	return m.ServerCycles(steps) / m.CoreHz * 1e9
}

// SerializationNs is the time to put a frame on a link.
func (m CostModel) SerializationNs(bytes int) float64 {
	return float64(bytes) * 8 / m.LineRateBps * 1e9
}

// CtlBatchNs models the latency to push n control-plane updates and flip
// visibility, reproducing Table 3's scaling: 1 table ≈ 135 µs, 2 ≈ 270 µs,
// 4 ≈ 371 µs (the tail pipelines).
func (m CostModel) CtlBatchNs(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= 2 {
		return float64(n) * m.CtlOpSerialNs
	}
	return 2*m.CtlOpSerialNs + float64(n-2)*m.CtlOpPipelinedNs
}

package netsim

import (
	"fmt"

	"gallium/internal/packet"
)

// FlowDriver sends one TCP flow through the packet-level testbed with
// slow-start windowing: each round sends a window of MSS-sized segments
// back to back, then waits one RTT (forward delivery plus the reverse
// path) before growing the window. It exists to cross-validate the fluid
// workload engine: for an uncontended flow, both must predict the same
// completion time.
type FlowDriver struct {
	TB         *Testbed
	MSS        int
	InitWindow int
}

// FlowResult reports one driven flow.
type FlowResult struct {
	FCTNs   int64
	Packets int
	Rounds  int
}

// Run sends size bytes of the given connection starting at startNs and
// returns when the last segment is delivered. The reverse (ACK) path is
// approximated as the forward fast-path latency: ACKs cross the same
// switch but skip the middlebox server.
func (fd *FlowDriver) Run(startNs int64, tup packet.FiveTuple, size int64) (FlowResult, error) {
	if fd.MSS <= 0 {
		fd.MSS = 1460
	}
	if fd.InitWindow <= 0 {
		fd.InitWindow = 10
	}
	m := fd.TB.cfg.Model
	reverseNs := int64(2*m.EndpointStackNs + 2*m.LinkPropNs + m.SwitchPipelineNs +
		m.SerializationNs(64))

	res := FlowResult{}
	remaining := int((size + int64(fd.MSS) - 1) / int64(fd.MSS))
	if remaining == 0 {
		remaining = 1
	}

	// SYN establishes middlebox state (and pays any synchronization
	// stall under output commit).
	t := startNs
	syn := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{Flags: packet.TCPFlagSYN})
	d, err := fd.TB.Inject(t, syn)
	if err != nil {
		return res, err
	}
	if !d.Delivered {
		return res, fmt.Errorf("netsim: SYN not delivered")
	}
	res.Packets++
	// Handshake completes one reverse trip later.
	t = d.DeliverNs + reverseNs

	w := fd.InitWindow
	lastDeliver := d.DeliverNs
	var seq uint32
	for remaining > 0 {
		res.Rounds++
		burst := w
		if burst > remaining {
			burst = remaining
		}
		sendAt := t
		for i := 0; i < burst; i++ {
			p := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
				packet.TCPOptions{Flags: packet.TCPFlagACK, Seq: seq})
			p.PadTo(fd.MSS + 54)
			d, err := fd.TB.Inject(sendAt, p)
			if err != nil {
				return res, err
			}
			if d.Delivered {
				if d.DeliverNs > lastDeliver {
					lastDeliver = d.DeliverNs
				}
				res.Packets++
			}
			seq += uint32(fd.MSS)
			// Back-to-back at the sender's line rate.
			sendAt += int64(m.SerializationNs(fd.MSS + 54))
		}
		remaining -= burst
		// The next round starts when the last ACK returns.
		t = lastDeliver + reverseNs
		w *= 2
	}
	res.FCTNs = lastDeliver + reverseNs - startNs
	return res, nil
}

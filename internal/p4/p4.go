// Package p4 generates the deployable switch program from a partitioned
// middlebox (§4.3.1): the pre- and post-processing partitions become a
// single P4 program — header definitions (including the synthesized
// Gallium headers), a parser, match-action tables for offloaded maps,
// registers for offloaded scalars/vector metadata, and an ingress control
// that dispatches on the packet's ingress port (server-facing port runs
// the post pipeline, everything else runs pre).
//
// The switch simulator executes the partition functions directly; the
// rendered P4-16-style source is the deployable artifact (and the unit
// Table 1 counts).
package p4

import (
	"fmt"
	"sort"
	"strings"

	"gallium/internal/ir"
	"gallium/internal/partition"
)

// Table is one match-action table on the switch, realizing an offloaded
// map (exact match on the key tuple) or vector (exact match on the index).
type Table struct {
	Name string
	// Global is the middlebox state this table realizes.
	Global *ir.Global
	// KeyBits are the match key widths; ValBits the action-data widths.
	KeyBits []int
	ValBits []int
	// Lpm marks a longest-prefix-match table (§7 extension).
	Lpm bool
	// Stmt is the statement ID of the single offloaded access.
	Stmt int
}

// Entries returns the annotated capacity.
func (t *Table) Entries() int { return t.Global.MaxEntries }

// Register is switch register state realizing an offloaded scalar global
// or a vector's length word.
type Register struct {
	Name   string
	Global *ir.Global
	Bits   int
	// Length marks a vector-length register (vs the scalar value itself).
	Length bool
}

// Program is the generated switch program.
type Program struct {
	Middlebox string
	Tables    []Table
	Registers []Register
	// Pre and Post are the executable pipeline partitions.
	Pre, Post *ir.Function
	// Source is the rendered P4-16-style program text.
	Source string
	// Resources summarizes what the program consumes.
	Resources Resources
}

// Resources is the switch-side resource accounting.
type Resources struct {
	MemoryBytes   int
	MetadataBits  int
	PipelineDepth int
	TransferABits int
	TransferBBits int
}

// Generate builds the switch program from a partition result.
func Generate(res *partition.Result) (*Program, error) {
	p := &Program{
		Middlebox: res.Prog.Name,
		Pre:       res.PreFn,
		Post:      res.PostFn,
	}
	names := append([]string(nil), res.OffloadedGlobals...)
	sort.Strings(names)
	for _, gn := range names {
		g := res.Prog.Global(gn)
		stmt := res.SwitchAccess[gn]
		switch g.Kind {
		case ir.KindMap:
			t := Table{Name: "tbl_" + gn, Global: g, Stmt: stmt}
			for _, kt := range g.KeyTypes {
				t.KeyBits = append(t.KeyBits, kt.Bits())
			}
			for _, vt := range g.ValTypes {
				t.ValBits = append(t.ValBits, vt.Bits())
			}
			p.Tables = append(p.Tables, t)
		case ir.KindVec:
			// A vector offloads as an index-keyed table plus a length
			// register; which one is needed depends on the access.
			access := res.Prog.Fn.Stmt(stmt)
			if access.Kind == ir.VecGet {
				p.Tables = append(p.Tables, Table{
					Name: "tbl_" + gn, Global: g, Stmt: stmt,
					KeyBits: []int{32}, ValBits: []int{g.ValTypes[0].Bits()},
				})
			} else {
				p.Registers = append(p.Registers, Register{
					Name: "reg_" + gn + "_len", Global: g, Bits: 32, Length: true,
				})
			}
		case ir.KindScalar:
			p.Registers = append(p.Registers, Register{
				Name: "reg_" + gn, Global: g, Bits: g.ValTypes[0].Bits(),
			})
		case ir.KindLPM:
			t := Table{Name: "tbl_" + gn, Global: g, Stmt: stmt, KeyBits: []int{32}, Lpm: true}
			for _, vt := range g.ValTypes {
				t.ValBits = append(t.ValBits, vt.Bits())
			}
			p.Tables = append(p.Tables, t)
		}
	}
	p.Resources = Resources{
		MemoryBytes:   res.Report.SwitchMemoryBytes,
		MetadataBits:  res.Report.MaxMetadataBits,
		PipelineDepth: maxInt(res.Report.DepthPre, res.Report.DepthPost),
		TransferABits: res.FormatA.DataLen() * 8,
		TransferBBits: res.FormatB.DataLen() * 8,
	}
	p.Source = render(res, p)
	return p, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LinesOfCode counts non-blank lines of the rendered program (the unit of
// the paper's Table 1).
func (p *Program) LinesOfCode() int {
	n := 0
	for _, line := range strings.Split(p.Source, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TableFor returns the table realizing the named global, if any.
func (p *Program) TableFor(global string) (*Table, bool) {
	for i := range p.Tables {
		if p.Tables[i].Global.Name == global {
			return &p.Tables[i], true
		}
	}
	return nil, false
}

// RegisterFor returns the register realizing the named global, if any.
func (p *Program) RegisterFor(global string) (*Register, bool) {
	for i := range p.Registers {
		if p.Registers[i].Global.Name == global {
			return &p.Registers[i], true
		}
	}
	return nil, false
}

var _ = fmt.Sprintf

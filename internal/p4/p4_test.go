package p4

import (
	"strings"
	"testing"

	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/partition"
)

func generate(t *testing.T, name string) (*partition.Result, *Program) {
	t.Helper()
	prog, err := lang.Compile(mustSource(t, name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, p
}

func mustSource(t *testing.T, name string) string {
	t.Helper()
	s, err := middleboxes.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return s.Source
}

func TestGenerateMiniLB(t *testing.T) {
	res, p := generate(t, "minilb")
	// The connection map becomes an exact-match table.
	tbl, ok := p.TableFor("conn")
	if !ok {
		t.Fatal("no table for conn map")
	}
	if tbl.Entries() != 65536 {
		t.Errorf("table size = %d", tbl.Entries())
	}
	if len(tbl.KeyBits) != 1 || tbl.KeyBits[0] != 16 {
		t.Errorf("key bits = %v", tbl.KeyBits)
	}
	if len(tbl.ValBits) != 1 || tbl.ValBits[0] != 32 {
		t.Errorf("val bits = %v", tbl.ValBits)
	}
	// The vector length is read on the switch via a register.
	if _, ok := p.RegisterFor("backends"); !ok {
		t.Error("no register for backends length")
	}
	// Source structure.
	for _, want := range []string{
		"#include <v1model.p4>",
		"header gallium_a_t",
		"header gallium_b_t",
		"table tbl_conn",
		"size = 65536;",
		"ingress_port == SERVER_PORT",
		"mark_to_drop", // drop primitive appears (implicit drop path)
		"hdr.ipv4.dstAddr",
	} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("P4 source missing %q", want)
		}
	}
	if res.FormatA.DataLen() > 0 && !strings.Contains(p.Source, "bit<32> hash32") {
		t.Errorf("gallium_a header missing hash32 field:\n%s", sectionAround(p.Source, "gallium_a_t"))
	}
}

func sectionAround(src, marker string) string {
	i := strings.Index(src, marker)
	if i < 0 {
		return ""
	}
	end := i + 400
	if end > len(src) {
		end = len(src)
	}
	return src[i:end]
}

func TestGenerateMazuNAT(t *testing.T) {
	_, p := generate(t, "mazunat")
	if _, ok := p.TableFor("nat_fwd"); !ok {
		t.Error("no table for nat_fwd")
	}
	if _, ok := p.TableFor("nat_rev"); !ok {
		t.Error("no table for nat_rev")
	}
	// The port counter must NOT offload: its read feeds a server-side
	// write (split read-modify-write), so under asynchronous write-back a
	// switch-resident register would hand two concurrent flows the same
	// port (partition rule 7). The allocator lives on the server.
	if _, ok := p.RegisterFor("next_port"); ok {
		t.Error("next_port counter offloaded despite server-side write (split RMW)")
	}
	if p.Resources.MemoryBytes == 0 {
		t.Error("no switch memory accounted")
	}
}

func TestGenerateFirewallIsPureSwitch(t *testing.T) {
	res, p := generate(t, "firewall")
	if len(p.Tables) != 2 {
		t.Errorf("tables = %d, want 2 (both directions)", len(p.Tables))
	}
	// No transfers at all: nothing ever reaches the server.
	if res.FormatA.DataLen() != 0 {
		t.Errorf("firewall transfer A = %d bytes, want 0", res.FormatA.DataLen())
	}
	if !strings.Contains(p.Source, "tbl_wl_in") || !strings.Contains(p.Source, "tbl_wl_out") {
		t.Error("missing direction tables in source")
	}
}

func TestLinesOfCodeCountsNonBlank(t *testing.T) {
	_, p := generate(t, "proxy")
	if loc := p.LinesOfCode(); loc < 50 {
		t.Errorf("proxy P4 LoC = %d, suspiciously small", loc)
	}
	blank := Program{Source: "a\n\n\nb\n"}
	if blank.LinesOfCode() != 2 {
		t.Errorf("LinesOfCode = %d, want 2", blank.LinesOfCode())
	}
}

func TestAllMiddleboxesGenerate(t *testing.T) {
	for _, s := range middleboxes.Extended() {
		_, p := generate(t, s.Name)
		if p.LinesOfCode() == 0 {
			t.Errorf("%s: empty P4 program", s.Name)
		}
		if p.Resources.PipelineDepth > partition.DefaultConstraints().PipelineDepth {
			t.Errorf("%s: depth %d over budget", s.Name, p.Resources.PipelineDepth)
		}
		if p.Resources.TransferABits > 20*8 || p.Resources.TransferBBits > 20*8 {
			t.Errorf("%s: transfers over the 20-byte budget", s.Name)
		}
	}
}

func TestGenerateIPGatewayLPM(t *testing.T) {
	_, p := generate(t, "ipgateway")
	tbl, ok := p.TableFor("routes")
	if !ok {
		t.Fatal("no table for routes")
	}
	if !tbl.Lpm {
		t.Error("routes table should use lpm matching")
	}
	if !strings.Contains(p.Source, ": lpm;") {
		t.Error("P4 source lacks an lpm match key")
	}
	if !strings.Contains(p.Source, "tbl_routes") || !strings.Contains(p.Source, "tbl_blocklist") {
		t.Error("missing tables in source")
	}
}

package engine

import (
	"time"

	"gallium/internal/netsim"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/switchsim"
)

// Delivery reports one packet's fate, extending the testbed's Delivery
// with the dispatch coordinates that only exist under concurrency.
type Delivery struct {
	// Seq is the packet's position in the workload stream.
	Seq int64
	// TNs is the injection time (virtual ns).
	TNs int64
	// Worker is the shard that processed the packet.
	Worker int
	// Flow is the packet's ingress five-tuple, captured before the
	// middlebox rewrote any headers.
	Flow packet.FiveTuple
	// Pkt is the packet after processing (rewritten headers).
	Pkt *packet.Packet

	// Delivered is true when the packet reached the destination host.
	Delivered bool
	// MBDropped means the middlebox's logic dropped it (e.g. firewall).
	MBDropped bool
	// QueueDropped means the shard's ingress queue overflowed.
	QueueDropped bool
	// FastPath means the switch handled it without the server.
	FastPath bool
	// DeliverNs is when the packet reached the destination (virtual ns).
	DeliverNs int64
	// LatencyNs is end-to-end in virtual time (application to application).
	LatencyNs int64
}

// Report summarizes one engine run: virtual-time traffic statistics
// (aggregated across shards), wall-clock throughput, and the latency
// distribution merged from the per-worker histograms at read time.
type Report struct {
	// Stats aggregates every worker's counters; latencies and delivery
	// windows are virtual-time, like the testbed's.
	Stats netsim.Stats
	// PerWorker holds each shard's own counters (index == worker id).
	PerWorker []netsim.Stats
	// Workers is the shard count the engine ran with.
	Workers int
	// WallNs is the wall-clock duration of Run.
	WallNs int64
	// PPS is wall-clock packets per second (Injected / WallNs) — the
	// engine's real concurrency throughput, unlike the virtual-time
	// Stats.ThroughputBps.
	PPS float64
	// Latency is the end-to-end virtual-time latency distribution over
	// all delivered packets.
	Latency obs.HistSnapshot
	// Switch holds the first pipeline stage's switch counters (nil in
	// Software mode).
	Switch *switchsim.Stats
	// SwitchStages holds every pipeline stage's switch counters in stage
	// order (nil in Software mode); SwitchStages[0] equals *Switch.
	SwitchStages []switchsim.Stats
	// Reconfigs counts control-plane reconfigurations applied during the
	// run.
	Reconfigs int
	// AdaptiveBatch reports whether the per-worker batch controller ran
	// (Config.Batch <= 0); BatchSizes holds each worker's batch size at
	// report time — the controller's latest decision, or the fixed size.
	AdaptiveBatch bool
	BatchSizes    []int
	// Flow summarizes the flow-state lifecycle (nil when no FlowTable
	// was configured).
	Flow *FlowReport
}

// FlowReport aggregates the flow-state lifecycle counters across every
// worker's per-stage tracker.
type FlowReport struct {
	// Capacity is the configured engine-wide entry limit.
	Capacity int
	// Occupancy is the live entry count across all dynamic maps at the
	// last sweep; Peak is its high-water mark.
	Occupancy uint64
	Peak      uint64
	// Expired counts entries removed by session timeout; Evicted counts
	// entries removed by capacity (LRU) eviction.
	Expired uint64
	Evicted uint64
}

// buildReport aggregates worker- and engine-level state from a consistent
// per-worker stats snapshot (taken either after the run settled or inside
// each worker's goroutine at a live barrier).
func (e *Engine) buildReport(per []netsim.Stats, wall time.Duration) *Report {
	r := &Report{Workers: len(e.workers), WallNs: int64(wall)}
	parts := make([]*obs.Histogram, 0, len(e.workers))
	agg := &r.Stats
	for i, w := range e.workers {
		s := per[i]
		r.PerWorker = append(r.PerWorker, s)
		agg.Injected += s.Injected
		agg.Delivered += s.Delivered
		agg.MBDrops += s.MBDrops
		agg.QueueDrops += s.QueueDrops
		agg.FastPath += s.FastPath
		agg.SlowPath += s.SlowPath
		agg.BytesIn += s.BytesIn
		agg.BytesOut += s.BytesOut
		agg.ServerCycles += s.ServerCycles
		if s.FirstDeliverNs != 0 && (agg.FirstDeliverNs == 0 || s.FirstDeliverNs < agg.FirstDeliverNs) {
			agg.FirstDeliverNs = s.FirstDeliverNs
		}
		if s.LastDeliverNs > agg.LastDeliverNs {
			agg.LastDeliverNs = s.LastDeliverNs
		}
		parts = append(parts, w.hLat)
		r.BatchSizes = append(r.BatchSizes, int(w.batchNow.Load()))
	}
	r.AdaptiveBatch = e.cfg.Batch <= 0
	agg.CtlBatches = int(e.rcBatches.Load())
	agg.CtlOps = int(e.rcOps.Load())
	agg.CtlRejected = int(e.rcRejected.Load())
	for _, cs := range e.ctls {
		agg.CtlBatches += int(cs.batches.Load())
		agg.CtlOps += int(cs.ops.Load())
		agg.CtlRejected += int(cs.rejected.Load())
	}
	r.Reconfigs = int(e.reconfigs.Load())
	r.Latency = obs.MergeHistograms(parts...).Snapshot()
	if wall > 0 {
		r.PPS = float64(agg.Injected) / wall.Seconds()
	}
	for _, sw := range e.sws {
		r.SwitchStages = append(r.SwitchStages, sw.Stats())
	}
	if len(r.SwitchStages) > 0 {
		r.Switch = &r.SwitchStages[0]
	}
	if cfg := e.flowCfg.Load(); cfg != nil {
		fr := &FlowReport{Capacity: cfg.Capacity}
		for _, fs := range e.flowTrackerStats() {
			fr.Occupancy += fs.Occupancy
			fr.Peak += fs.Peak
			fr.Expired += fs.Expired
			fr.Evicted += fs.Evicted
		}
		r.Flow = fr
	}
	return r
}

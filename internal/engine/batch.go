package engine

// batchController sizes one worker's pull batch from observed ingress
// occupancy, bounded by a latency budget. Larger batches amortize the
// §4.3.3 output-commit barrier across more packets; smaller batches bound
// how long the first packet of a batch waits behind the rest. The
// controller is multiplicative in both directions — it doubles when the
// worker drained a full batch and left backlog behind (the queue is
// outrunning it) and halves when the pull came up less than half full
// (the queue is running dry) — and it never grows past what the worker
// can process inside the budget, estimated from an EWMA of per-packet
// wall time. Each worker owns one controller; there is no cross-worker
// coordination, so shards under different load settle at different sizes.
type batchController struct {
	size     int
	min, max int
	budgetNs float64
	// perPktNs is the EWMA estimate of wall time per processed packet.
	// It is only fed from batches of more than one packet: timing every
	// single-packet batch would put two clock reads on the light-load
	// path, where batching is irrelevant anyway.
	perPktNs float64
}

// batchStart is the controller's initial size — the engine's historical
// fixed default, so an adaptive worker under steady moderate load starts
// where the fixed configuration used to sit.
const batchStart = 32

func newBatchController(cfg Config) *batchController {
	c := &batchController{min: 8, max: cfg.QueueDepth, budgetNs: float64(cfg.BatchBudgetNs)}
	if c.max > 256 {
		c.max = 256
	}
	if c.max < c.min {
		c.max = c.min
	}
	c.size = batchStart
	if c.size > c.max {
		c.size = c.max
	}
	return c
}

// observe feeds one completed batch back into the controller and returns
// the size for the next pull. pulled is how many jobs the batch held,
// npkts how many were packets (control jobs carry no per-packet cost),
// backlog the queue length after the pull, and elapsedNs the batch's
// wall time (0 when unmeasured).
func (c *batchController) observe(pulled, npkts, backlog int, elapsedNs int64) int {
	if elapsedNs > 0 && npkts > 1 {
		per := float64(elapsedNs) / float64(npkts)
		if c.perPktNs == 0 {
			c.perPktNs = per
		} else {
			c.perPktNs += 0.2 * (per - c.perPktNs)
		}
	}
	switch {
	case pulled >= c.size && backlog > 0:
		c.size *= 2
	case pulled < c.size/2:
		c.size /= 2
	}
	if c.perPktNs > 0 {
		if lim := int(c.budgetNs / c.perPktNs); lim > 0 && c.size > lim {
			c.size = lim
		}
	}
	if c.size < c.min {
		c.size = c.min
	}
	if c.size > c.max {
		c.size = c.max
	}
	return c.size
}

package engine

import (
	"context"
	"sync/atomic"
	"testing"

	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/switchsim"
)

// TestLiveLifecycle drives the long-lived Start / Feed / Reconfigure /
// LiveReport / Stop path directly (the session tests exercise it only
// through the facade) and pins the accessor surface, including the
// lifecycle guards on either side of the running window.
func TestLiveLifecycle(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	eng, err := New(Config{
		Workers: 2,
		Res:     res,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before Start: guarded entry points refuse, accessors are inert.
	if eng.Uptime() != 0 {
		t.Error("uptime nonzero before Start")
	}
	if err := eng.Reconfigure(Reconfig{}); err == nil {
		t.Error("Reconfigure before Start did not fail")
	}
	if _, err := eng.LiveReport(); err == nil {
		t.Error("LiveReport before Start did not fail")
	}

	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	flows := lbFlows(8)
	if err := eng.Feed(roundRobin(flows, 5, -1)); err != nil {
		t.Fatal(err)
	}

	// A live snapshot between feeds accounts for everything dispatched.
	mid, err := eng.LiveReport()
	if err != nil {
		t.Fatal(err)
	}
	if mid.Stats.Injected != 40 {
		t.Fatalf("live report injected %d, want 40", mid.Stats.Injected)
	}
	if got := mid.Stats.Delivered + mid.Stats.MBDrops + mid.Stats.QueueDrops; got != 40 {
		t.Fatalf("live report accounts for %d of 40", got)
	}

	// Reconfigure with a per-shard mutation: it must run once per worker
	// against a real shard state, and the engine must keep flowing after.
	var mutations atomic.Int32
	err = eng.Reconfigure(Reconfig{
		Mutate: func(shard int, st *ir.State) []switchsim.Update {
			if st == nil {
				t.Errorf("shard %d mutated against nil state", shard)
			}
			mutations.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mutations.Load(); got != 2 {
		t.Errorf("mutation ran on %d shards, want 2", got)
	}
	if err := eng.Reconfigure(Reconfig{Stage: 5}); err == nil {
		t.Error("out-of-range stage accepted")
	}

	// Accessors while running.
	if eng.Stages() != 1 {
		t.Errorf("Stages = %d, want 1", eng.Stages())
	}
	if eng.StageName(99) != "" {
		t.Error("out-of-range StageName is not empty")
	}
	_ = eng.StageName(0)
	if eng.Uptime() <= 0 {
		t.Error("uptime zero while running")
	}
	if _, ok := eng.SwitchStats(); !ok {
		t.Error("offloaded engine reports no switch stats")
	}
	if _, ok := eng.SwitchStatsAt(99); ok {
		t.Error("out-of-range stage reported switch stats")
	}

	// Injection times are monotone across feeds, so the second workload
	// replays the first shifted past its last timestamp.
	first := roundRobin(flows, 5, -1)
	shifted := scripted{tuples: flows, gen: func(emit func(int64, *packet.Packet) error) error {
		return first.gen(func(tNs int64, pkt *packet.Packet) error {
			return emit(tNs+1_000_000, pkt)
		})
	}}
	if err := eng.Feed(shifted); err != nil {
		t.Fatal(err)
	}
	final, err := eng.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if final.Stats.Injected != 80 {
		t.Errorf("final injected %d, want 80", final.Stats.Injected)
	}

	// After Stop: shard states are observable, live entry points refuse.
	states := eng.ShardStates()
	if len(states) != 2 || states[0] == nil || states[1] == nil {
		t.Fatalf("ShardStates = %v, want 2 non-nil", states)
	}
	if _, err := eng.LiveReport(); err == nil {
		t.Error("LiveReport after Stop did not fail")
	}
	if err := eng.Reconfigure(Reconfig{}); err == nil {
		t.Error("Reconfigure after Stop did not fail")
	}
}

package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gallium/internal/flowstate"
	"gallium/internal/ir"
	"gallium/internal/netsim"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/serverrt"
	"gallium/internal/switchsim"
)

// job is one dispatched packet, or (when ctrl is set) a control job the
// worker executes in its own goroutine between packets: reconfiguration
// mutations, settle barriers, stats snapshots. Control jobs keep the
// engine's goroutine confinement — shard state is only ever touched from
// its worker's goroutine — and are ordered with packets by channel FIFO.
type job struct {
	seq  int64
	tNs  int64
	flow packet.FiveTuple
	pkt  *packet.Packet
	ctrl func(w *worker)
}

// workerCounters are the per-worker observability handles (nil-safe).
type workerCounters struct {
	packets, delivered, fast, slow *obs.Counter
}

// worker owns one shard of the middlebox server: its own serverrt state
// per pipeline stage (authoritative for the flows hashed to it) and its
// own virtual-time core model. Everything here is goroutine-local except
// the shared switches (internally locked) and the control-plane channel.
type worker struct {
	id   int
	eng  *Engine
	jobs chan job

	// Exactly one of srv (offloaded) or sft (software baseline) is
	// populated, with one entry per pipeline stage.
	srv []*serverrt.Server
	sft []*serverrt.Software

	// The fields below are this worker's per-packet hot state, padded on
	// both sides so adjacent workers' blocks never share a cache line
	// (workers are separate allocations, but the allocator is free to
	// pack them; a shared line would turn every counter bump into
	// cross-core traffic).
	_ [64]byte

	// coreFreeNs models this worker's core occupancy in virtual time, as
	// the testbed's per-core array does: worker == simulated core. Chained
	// stages share the core, as chained middlebox elements share a DPDK
	// core in the paper's runtime.
	coreFreeNs int64
	// jitterState drives this worker's deterministic endpoint-stack noise.
	jitterState uint64

	// batch and pending are reused across batches so the steady state
	// allocates neither.
	batch   []job
	pending []pendingApply

	stats netsim.Stats
	hLat  *obs.Histogram
	c     workerCounters

	// Flow-state lifecycle. life holds one tracker per stage (nil when
	// the stage has no dynamic maps or the lifecycle is disabled); the
	// element pointers are atomic so report building can snapshot
	// counters while the worker retunes mid-run. touch holds the
	// per-stage switch fast-path callbacks and, like lifeOn, lastTNs
	// and sweepDue, is touched only by this worker's goroutine (or
	// before Start).
	life     []atomic.Pointer[flowstate.Tracker]
	touch    []func(string, ir.MapKey)
	lifeOn   bool
	lastTNs  int64
	sweepDue int

	// batchNow is the worker's current batch size (fixed, or the adaptive
	// controller's latest decision), exported race-free to reports.
	batchNow atomic.Int64

	_ [64]byte
}

// setLifecycle arms (or retunes) this worker's flow-state trackers for
// the given ENGINE-WIDE config. It runs either before Start or inside
// this worker's own goroutine as a control job, preserving the engine's
// state confinement.
func (w *worker) setLifecycle(cfg flowstate.Config) {
	shard := cfg.Shard(len(w.eng.workers))
	for si := range w.eng.stages {
		dyn := w.eng.lifeDyn[si]
		if len(dyn) == 0 {
			continue
		}
		if tr := w.life[si].Load(); tr != nil {
			tr.SetConfig(shard)
			w.lifeOn = true
			continue
		}
		st := w.stageState(si)
		if st == nil {
			continue
		}
		w.life[si].Store(flowstate.NewTracker(shard, st, dyn))
		w.touch[si] = st.Touch
		w.lifeOn = true
	}
}

// setClock stamps the packet's virtual time and traffic class onto every
// lifecycle-armed stage state before the packet executes, so map touches
// (server-side finds/inserts and switch fast-path hits) record liveness.
// The class is taken from the packet as it arrived, before any stage
// rewrites headers.
func (w *worker) setClock(j job) {
	if j.tNs > w.lastTNs {
		w.lastTNs = j.tNs
	}
	class := uint8(flowstate.ClassOf(j.pkt))
	for si := range w.life {
		if w.life[si].Load() == nil {
			continue
		}
		st := w.stageState(si)
		st.NowNs = j.tNs
		st.Class = class
	}
}

// maybeSweep runs an incremental expiry sweep once enough packets have
// passed since the last one. It runs at the batch boundary, BEFORE the
// batch's waitAll barrier, so the deletions it ships are applied and
// visible before any packet of the next batch runs.
func (w *worker) maybeSweep(ctx context.Context, npkts int) {
	cfg := w.eng.flowCfg.Load()
	if cfg == nil || cfg.SweepEvery < 0 {
		return
	}
	w.sweepDue += npkts
	if w.sweepDue < cfg.SweepEvery {
		return
	}
	w.sweepDue = 0
	w.sweep(ctx, false)
}

// sweep expires (and, over capacity, evicts) this worker's tracked flow
// entries as of its latest packet time. Removals of switch-resident
// entries ship through the ordinary control channel as expiry-marked
// deletions, so they ride the §4.3.3 stage/flip/merge discipline: a
// later re-insert of the same key is enqueued behind the deletion on the
// FIFO channel (or supersedes it within the same staged window, last
// writer wins), so an expiry can never resurrect a stale entry over a
// fresher one.
func (w *worker) sweep(ctx context.Context, full bool) {
	for si := range w.life {
		tr := w.life[si].Load()
		if tr == nil {
			continue
		}
		removals := tr.Sweep(w.lastTNs, full)
		if len(removals) == 0 || si >= len(w.eng.sws) {
			continue
		}
		off := w.eng.lifeOff[si]
		var ups []switchsim.Update
		for _, r := range removals {
			if !off[r.Table] {
				continue
			}
			ups = append(ups, switchsim.Update{Table: r.Table, Key: r.Key, Delete: true, Expire: true})
		}
		if len(ups) == 0 {
			continue
		}
		// The zero flow tuple never matches a real packet's, so only the
		// batch-boundary barrier (not per-flow waits) blocks on this.
		if err := w.sendCtlPending(ctx, packet.FiveTuple{}, ctlBatch{updates: ups, stage: si}); err != nil {
			return
		}
	}
}

// stageState returns this shard's authoritative state for one stage.
func (w *worker) stageState(stage int) *ir.State {
	switch {
	case stage >= 0 && stage < len(w.srv):
		return w.srv[stage].State
	case stage >= 0 && stage < len(w.sft):
		return w.sft[stage].State
	}
	return nil
}

// pendingApply is one in-flight write-back batch: the flow it belongs to
// and the drainer's apply signal.
type pendingApply struct {
	flow    packet.FiveTuple
	applied chan struct{}
}

// loop consumes the worker's job channel in batches: one blocking receive,
// then a non-blocking drain up to the current batch size — fixed when
// Config.Batch is positive, otherwise governed by this worker's adaptive
// controller (see batchController). Jobs still run strictly in arrival
// order — batching changes when the worker waits for control-plane
// applies (per flow inside the batch, everything at the batch boundary),
// not the processing order. After a cancellation or failure it keeps
// draining — without processing — so the dispatcher can never block on a
// full channel during shutdown; control jobs still run then, so barriers
// and reconfigurations can't deadlock an abort.
func (w *worker) loop(ctx context.Context) {
	max := w.eng.cfg.Batch
	var ad *batchController
	if max <= 0 {
		ad = newBatchController(w.eng.cfg)
		max = ad.size
	}
	w.batchNow.Store(int64(max))
	for {
		j, ok := <-w.jobs
		if !ok {
			break
		}
		batch := append(w.batch[:0], j)
		open := true
		for open && len(batch) < max {
			select {
			case j, ok := <-w.jobs:
				if !ok {
					open = false
					break
				}
				batch = append(batch, j)
			default:
				open = false
			}
		}
		w.batch = batch
		var t0 time.Time
		measure := ad != nil && len(batch) > 1
		if measure {
			t0 = time.Now()
		}
		npkts := 0
		for _, j := range batch {
			if j.ctrl != nil {
				j.ctrl(w)
				continue
			}
			if ctx.Err() != nil {
				continue
			}
			npkts++
			// A packet must not overtake its own flow's pending write-back:
			// otherwise a burst's second packet could re-take the slow path
			// with stale lookups and re-execute a non-idempotent miss branch
			// (e.g. re-allocating a NAT port).
			if err := w.waitFlow(ctx, j.flow); err != nil {
				continue
			}
			if err := w.process(ctx, j); err != nil {
				w.eng.fail(err)
			}
		}
		if w.lifeOn && npkts > 0 {
			w.maybeSweep(ctx, npkts)
		}
		w.waitAll(ctx)
		if ad != nil {
			var el int64
			if measure {
				el = time.Since(t0).Nanoseconds()
			}
			if m := ad.observe(len(batch), npkts, len(w.jobs), el); m != max {
				max = m
				w.batchNow.Store(int64(m))
			}
		}
	}
	// Final full sweep before the engine joins: the control channel is
	// still open (Stop closes it only after every worker exits).
	if w.lifeOn {
		w.sweep(ctx, true)
	}
	w.waitAll(ctx)
}

// waitFlow blocks until every pending apply of the given flow has landed,
// and opportunistically retires any other applies that already completed.
func (w *worker) waitFlow(ctx context.Context, flow packet.FiveTuple) error {
	if len(w.pending) == 0 {
		return nil
	}
	var err error
	kept := w.pending[:0]
	for _, p := range w.pending {
		select {
		case <-p.applied:
			continue
		default:
		}
		if p.flow == flow && err == nil {
			select {
			case <-p.applied:
				continue
			case <-ctx.Done():
				err = ctx.Err()
			}
		}
		kept = append(kept, p)
	}
	w.pending = kept
	return err
}

// waitAll is the batch-boundary barrier: the worker does not pull the next
// batch until every in-flight write-back of this one has been applied.
func (w *worker) waitAll(ctx context.Context) {
	for _, p := range w.pending {
		select {
		case <-p.applied:
		case <-ctx.Done():
		}
	}
	w.pending = w.pending[:0]
}

// stackNs returns the endpoint stack latency with deterministic jitter
// (the testbed's xorshift stream, one independent stream per worker).
func (w *worker) stackNs() float64 {
	m := w.eng.cfg.Model
	if m.StackJitterFrac == 0 {
		return m.EndpointStackNs
	}
	x := w.jitterState*2862933555777941757 + 3037000493
	w.jitterState = x
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return m.EndpointStackNs * (1 + m.StackJitterFrac*(u-0.5))
}

// sendCtl hands a write-back batch to this shard's own control-plane
// drainer, blocking on the bounded lane (backpressure) unless the run is
// being canceled. Each worker sends only to its own lane, so another
// shard's slow-path burst can neither delay nor reorder this shard's
// commits.
func (w *worker) sendCtl(ctx context.Context, b ctlBatch) error {
	select {
	case w.eng.ctls[w.id].ch <- b:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sendCtlPending hands a batch to the drainer and records it as pending
// for the packet's flow. This is §4.3.3 output commit narrowed to the
// flow: because a flow's packets all land on one worker, waitFlow before
// the flow's next packet (and waitAll at the batch boundary) guarantees a
// flow never observes the switch missing its own earlier write-back —
// while packets of OTHER flows keep flowing instead of stalling behind
// this commit.
func (w *worker) sendCtlPending(ctx context.Context, flow packet.FiveTuple, b ctlBatch) error {
	b.applied = make(chan struct{})
	if err := w.sendCtl(ctx, b); err != nil {
		return err
	}
	w.pending = append(w.pending, pendingApply{flow: flow, applied: b.applied})
	return nil
}

// emit fills the job-invariant Delivery fields and invokes the callback.
func (w *worker) emit(j job, d Delivery) {
	d.Seq = j.seq
	d.TNs = j.tNs
	d.Worker = w.id
	d.Flow = j.flow
	d.Pkt = j.pkt
	if cb := w.eng.cfg.OnDelivery; cb != nil {
		cb(d)
	}
}

// deliver carries the packet over the final link into the sink host.
func (w *worker) deliver(j job, t float64, fast bool) {
	m := w.eng.cfg.Model
	t += m.SerializationNs(j.pkt.WireLen()) + m.LinkPropNs + w.stackNs()
	d := Delivery{Delivered: true, FastPath: fast, DeliverNs: int64(t), LatencyNs: int64(t) - j.tNs}
	w.stats.Delivered++
	w.stats.BytesOut += int64(j.pkt.WireLen())
	if w.stats.FirstDeliverNs == 0 || d.DeliverNs < w.stats.FirstDeliverNs {
		w.stats.FirstDeliverNs = d.DeliverNs
	}
	if d.DeliverNs > w.stats.LastDeliverNs {
		w.stats.LastDeliverNs = d.DeliverNs
	}
	w.hLat.Observe(d.LatencyNs)
	w.c.delivered.Inc()
	w.emit(j, d)
}

// markSlow accounts the packet's first departure from the fast path; the
// counters are per packet, not per stage, so a chained pipeline counts
// like a single middlebox would.
func (w *worker) markSlow(tookSlow *bool) {
	if *tookSlow {
		return
	}
	*tookSlow = true
	w.stats.SlowPath++
	w.c.slow.Inc()
}

// stageVerdict is one pipeline stage's outcome for a packet.
type stageVerdict int

const (
	// stageContinue advances the packet to the next stage (or delivery).
	stageContinue stageVerdict = iota
	// stageMBDrop means the stage's middlebox logic dropped the packet.
	stageMBDrop
	// stageQueueDrop means the shard's (virtual-time) queue overflowed.
	stageQueueDrop
)

// process runs one packet to completion through every pipeline stage: the
// engine counterpart of Testbed.Inject, with this worker as the packet's
// (simulated) core. A packet that survives stage i feeds stage i+1 with
// its rewritten headers; any stage may drop it.
func (w *worker) process(ctx context.Context, j job) error {
	e := w.eng
	m := e.cfg.Model
	w.stats.Injected++
	w.c.packets.Inc()
	if w.lifeOn {
		w.setClock(j)
	}
	size := j.pkt.WireLen()
	w.stats.BytesIn += int64(size)

	// Source stack + first link.
	t := float64(j.tNs) + w.stackNs() + m.SerializationNs(size) + m.LinkPropNs

	tookSlow := false
	for si := range e.stages {
		var v stageVerdict
		var err error
		if len(e.sws) > 0 {
			v, err = w.runStage(ctx, si, j, &t, &tookSlow)
		} else {
			v, err = w.runSoftwareStage(si, j, &t, &tookSlow)
		}
		if err != nil {
			return err
		}
		switch v {
		case stageMBDrop:
			w.stats.MBDrops++
			if !tookSlow {
				w.stats.FastPath++
				w.c.fast.Inc()
			}
			w.emit(j, Delivery{MBDropped: true, FastPath: !tookSlow})
			return nil
		case stageQueueDrop:
			w.stats.QueueDrops++
			w.emit(j, Delivery{QueueDropped: true})
			return nil
		}
	}
	if !tookSlow {
		w.stats.FastPath++
		w.c.fast.Inc()
	}
	w.deliver(j, t, !tookSlow)
	return nil
}

// runStage carries the packet through one offloaded stage: the switch
// pre-pass, then — when the compiled pipeline can't finish it — the
// slow-path trip to this worker's server shard and the post-pass back
// through the switch. On stageContinue, *t is the virtual time at which
// the packet leaves the stage and j.pkt carries its rewritten headers.
func (w *worker) runStage(ctx context.Context, si int, j job, t *float64, tookSlow *bool) (stageVerdict, error) {
	e := w.eng
	m := e.cfg.Model
	sw := e.sws[si]
	res := e.stages[si].Res

	// Switch pre-processing pass (shared stage, read lock inside). When
	// the lifecycle is armed, fast-path table hits stamp this worker's
	// own shard state via the touch callback (same goroutine — flow
	// affinity makes the switch hit's flow owned by this worker).
	var onTouch func(string, ir.MapKey)
	if w.lifeOn {
		onTouch = w.touch[si]
	}
	pre, err := sw.ProcessPreShard(j.pkt, w.id, onTouch)
	if err != nil {
		return 0, err
	}
	*t += m.SwitchPipelineNs
	if pre.Punt {
		return w.runPunt(ctx, si, j, t, tookSlow)
	}
	switch pre.Action {
	case ir.ActionDropped:
		return stageMBDrop, nil
	case ir.ActionSent:
		return stageContinue, nil
	}

	// Slow path: switch → this worker's server shard.
	w.markSlow(tookSlow)
	*t += m.SerializationNs(j.pkt.WireLen()) + m.LinkPropNs
	arrive := int64(*t)
	start := arrive
	if w.coreFreeNs > start {
		start = w.coreFreeNs
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		return stageQueueDrop, nil
	}
	rx, err := packet.DecodePacket(j.pkt.Serialize(), res.FormatA)
	if err != nil {
		return 0, fmt.Errorf("engine: server rx: %w", err)
	}
	srvRes, err := w.srv[si].Process(rx)
	if err != nil {
		return 0, err
	}
	busyUntil := start + int64(m.ServerServiceNs(srvRes.Steps))
	w.coreFreeNs = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	w.stats.ServerCycles += m.ServerCycles(srvRes.Steps)

	release := done
	if len(srvRes.Updates) > 0 {
		// Hand the batch to the control-plane drainer, account the
		// output-commit stall in virtual time (§4.3.3), and record it as
		// pending so this flow's next packet waits for the apply.
		if err := w.sendCtlPending(ctx, j.flow, ctlBatch{updates: srvRes.Updates, stage: si}); err != nil {
			return 0, err
		}
		release = done + int64(m.CtlBatchNs(len(srvRes.Updates)))
	}

	switch srvRes.Action {
	case ir.ActionDropped:
		return stageMBDrop, nil
	case ir.ActionSent:
		// Server-owned terminator: back through the switch as plain
		// forwarding.
		*t = float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
		*j.pkt = *rx
		return stageContinue, nil
	}

	// Back to the switch for post-processing.
	tBack := float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs
	back, err := packet.DecodePacket(rx.Serialize(), res.FormatB)
	if err != nil {
		return 0, fmt.Errorf("engine: switch rx from server: %w", err)
	}
	post, err := sw.ProcessPostShard(back, w.id, onTouch)
	if err != nil {
		return 0, err
	}
	tBack += m.SwitchPipelineNs
	*j.pkt = *back
	if post.Action == ir.ActionDropped {
		return stageMBDrop, nil
	}
	*t = tBack
	return stageContinue, nil
}

// runPunt handles a §7 cache-mode punt: the unmodified packet goes to
// this worker's shard, which runs the stage's full middlebox against its
// authoritative state. Cache fills do not stall the packet; synchronous
// updates do (output commit).
func (w *worker) runPunt(ctx context.Context, si int, j job, t *float64, tookSlow *bool) (stageVerdict, error) {
	e := w.eng
	m := e.cfg.Model
	w.markSlow(tookSlow)
	*t += m.SerializationNs(j.pkt.WireLen()) + m.LinkPropNs
	arrive := int64(*t)
	start := arrive
	if w.coreFreeNs > start {
		start = w.coreFreeNs
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		return stageQueueDrop, nil
	}
	rx, err := packet.DecodePacket(j.pkt.Serialize(), nil)
	if err != nil {
		return 0, fmt.Errorf("engine: server rx (punt): %w", err)
	}
	res, err := w.srv[si].ProcessFull(rx)
	if err != nil {
		return 0, err
	}
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	w.coreFreeNs = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	w.stats.ServerCycles += m.ServerCycles(res.Steps)

	release := done
	if len(res.Updates) > 0 {
		// Classify against the switch now for the stall estimate (only
		// synchronous updates hold the packet; read-through fills do not);
		// the drainer re-classifies at apply time. Fills stay fire-and-
		// forget (§7: a stale fill just re-punts, which is benign);
		// synchronous updates get the committed send like the normal path.
		fills, syncs := serverrt.ClassifyUpdates(e.sws[si], res.Updates)
		b := ctlBatch{updates: res.Updates, stage: si, punt: true}
		if len(syncs) > 0 {
			if err := w.sendCtlPending(ctx, j.flow, b); err != nil {
				return 0, err
			}
			release = done + int64(m.CtlBatchNs(len(fills)+len(syncs)))
		} else if err := w.sendCtl(ctx, b); err != nil {
			return 0, err
		}
	}
	if res.Action == ir.ActionDropped {
		return stageMBDrop, nil
	}
	// Back out through the switch as plain forwarding.
	*t = float64(release) + m.SerializationNs(rx.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	*j.pkt = *rx
	return stageContinue, nil
}

// runSoftwareStage runs one stage of the software baseline on this
// worker's shard (the FastClick comparison), with the switch as a plain
// forwarder.
func (w *worker) runSoftwareStage(si int, j job, t *float64, tookSlow *bool) (stageVerdict, error) {
	m := w.eng.cfg.Model
	*t += m.SwitchPipelineNs + m.SerializationNs(j.pkt.WireLen()) + m.LinkPropNs
	arrive := int64(*t)
	start := arrive
	if w.coreFreeNs > start {
		start = w.coreFreeNs
	}
	if float64(start-arrive) > m.MaxQueueDelayNs {
		return stageQueueDrop, nil
	}
	w.markSlow(tookSlow)
	res, err := w.sft[si].Process(j.pkt)
	if err != nil {
		return 0, err
	}
	busyUntil := start + int64(m.ServerServiceNs(res.Steps))
	w.coreFreeNs = busyUntil
	done := busyUntil + int64(m.ServerDatapathNs)
	w.stats.ServerCycles += m.ServerCycles(res.Steps)
	if res.Action == ir.ActionDropped {
		return stageMBDrop, nil
	}
	*t = float64(done) + m.SerializationNs(j.pkt.WireLen()) + m.LinkPropNs + m.SwitchPipelineNs
	return stageContinue, nil
}

package engine

import (
	"context"
	"testing"
	"time"

	"gallium/internal/flowstate"
	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/switchsim"
)

// burst emits perFlow ACK packets for every flow, rounds gapNs apart,
// starting at startNs — explicit virtual-time control for expiry tests.
func burst(flows []packet.FiveTuple, perFlow int, startNs, gapNs int64) scripted {
	return scripted{
		tuples: flows,
		gen: func(emit func(int64, *packet.Packet) error) error {
			for i := 0; i < perFlow; i++ {
				tNs := startNs + int64(i)*gapNs
				for _, tup := range flows {
					pkt := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
						packet.TCPOptions{Flags: packet.TCPFlagACK, Seq: uint32(i)})
					if err := emit(tNs, pkt); err != nil {
						return err
					}
					tNs++
				}
			}
			return nil
		},
	}
}

// aggressiveFlowTable is a lifecycle config with 1ms timeouts on every
// class and a sweep after every packet — expiry fires within test-sized
// virtual-time traces.
func aggressiveFlowTable(capacity int) *flowstate.Config {
	ms := time.Millisecond
	return &flowstate.Config{
		Capacity:    capacity,
		TCPTimeouts: flowstate.TCPTimeouts{Syn: ms, Established: ms, Fin: ms},
		UDPTimeout:  ms,
		SweepEvery:  1,
		SweepLimit:  1 << 20,
	}
}

// serverConns sums the l4lb connection entries across shard states.
func serverConns(e *Engine) (int, []ir.MapKey) {
	n := 0
	var keys []ir.MapKey
	for _, st := range e.ShardStates() {
		for k := range st.Maps["conns"] {
			keys = append(keys, k)
		}
		n += len(st.Maps["conns"])
	}
	return n, keys
}

// TestFlowExpiryEndToEnd: idle flows expire out of both the server
// shard state and the switch-visible table, while flows that keep
// talking survive. The expiry deletions ride the §4.3.3 write-back
// path, so after the run the switch serves exactly the server's
// surviving entries — no stale window, no resurrection.
func TestFlowExpiryEndToEnd(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	flows := lbFlows(8)
	idle, live := flows[:4], flows[4:]

	eng, err := New(Config{
		Workers:   1,
		Res:       res,
		Setup:     func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		FlowTable: aggressiveFlowTable(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Phase 1: everybody talks around t=0. Phase 2: only the live half
	// talks again at t=10ms, far past the 1ms idle timeout.
	if err := eng.Feed(burst(flows, 3, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(burst(live, 3, int64(10*time.Millisecond), 1000)); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Stop()
	if err != nil {
		t.Fatal(err)
	}

	if rep.Stats.Delivered != 8*3+4*3 {
		t.Fatalf("delivered %d of %d", rep.Stats.Delivered, 8*3+4*3)
	}
	if rep.Flow == nil {
		t.Fatal("report carries no flow-table section")
	}
	if rep.Flow.Capacity != 1000 {
		t.Fatalf("flow capacity = %d, want 1000", rep.Flow.Capacity)
	}
	if rep.Flow.Expired < uint64(len(idle)) {
		t.Fatalf("expired = %d, want >= %d (the idle half)", rep.Flow.Expired, len(idle))
	}

	n, keys := serverConns(eng)
	if n != len(live) {
		t.Fatalf("server holds %d conns after expiry, want %d", n, len(live))
	}
	if rep.Flow.Occupancy != uint64(n) {
		t.Fatalf("reported occupancy %d != server occupancy %d", rep.Flow.Occupancy, n)
	}
	// Switch/server agreement: every surviving server entry is visible
	// on the switch, and the switch table holds nothing else.
	for _, k := range keys {
		if visible, _ := eng.sws[0].VisibleEntry("conns", k); !visible {
			t.Fatalf("surviving server entry %v not visible on the switch", k)
		}
	}
	if sws := eng.sws[0].Stats(); sws.TableEntries["conns"] != n {
		t.Fatalf("switch table holds %d entries, server holds %d — expiry left a stale window",
			sws.TableEntries["conns"], n)
	}
	if sws := eng.sws[0].Stats(); sws.Expired < len(idle) {
		t.Fatalf("switch counted %d expiry deletes, want >= %d", sws.Expired, len(idle))
	}
}

// TestExpiryCannotResurrectStaleWindow pins the §4.3.3 ordering
// discipline at the switch layer, both directions:
//
//   - a stale insert staged BEFORE the expiry delete is superseded by
//     it (last-writer-wins): the entry cannot resurrect;
//   - a fresh re-establish staged AFTER the expiry delete supersedes
//     it: expiry cannot clobber the newer entry.
//
// The engine guarantees the orderings by construction — expiry deletes
// and slow-path write-backs share one FIFO control channel.
func TestExpiryCannotResurrectStaleWindow(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	sw := switchsim.New(res)
	key := ir.MakeMapKey(1, 2, 3, 4, 6)

	stage := func(u switchsim.Update) {
		t.Helper()
		if err := sw.StageWriteback(u); err != nil {
			t.Fatal(err)
		}
	}
	flip := func() {
		sw.FlipVisibility()
		sw.MergeWriteback()
	}

	// Establish the entry through an ordinary write-back window.
	stage(switchsim.Update{Table: "conns", Key: key, Vals: []uint64{9}})
	flip()
	if visible, _ := sw.VisibleEntry("conns", key); !visible {
		t.Fatal("establish: entry not visible after flip")
	}

	// Direction 1: stale insert, then expiry delete, one window. The
	// delete is the last writer; the stale entry must not survive.
	stage(switchsim.Update{Table: "conns", Key: key, Vals: []uint64{9}})
	stage(switchsim.Update{Table: "conns", Key: key, Delete: true, Expire: true})
	flip()
	if visible, _ := sw.VisibleEntry("conns", key); visible {
		t.Fatal("expiry staged after a stale insert did not win: stale window resurrected")
	}
	if got := sw.Stats().Expired; got != 1 {
		t.Fatalf("switch expiry counter = %d, want 1", got)
	}

	// Direction 2: expiry delete, then fresh re-establish, one window.
	// The insert is the last writer; expiry must not clobber it.
	stage(switchsim.Update{Table: "conns", Key: key, Vals: []uint64{7}})
	flip()
	stage(switchsim.Update{Table: "conns", Key: key, Delete: true, Expire: true})
	stage(switchsim.Update{Table: "conns", Key: key, Vals: []uint64{11}})
	flip()
	if visible, _ := sw.VisibleEntry("conns", key); !visible {
		t.Fatal("re-establish staged after an expiry was clobbered by it")
	}

	// Across windows FIFO holds trivially: a later window's expiry
	// applies after an earlier window's insert.
	stage(switchsim.Update{Table: "conns", Key: key, Delete: true, Expire: true})
	flip()
	if visible, _ := sw.VisibleEntry("conns", key); visible {
		t.Fatal("later-window expiry did not remove the entry")
	}
}

// TestFlowCapacityEviction: over-capacity tables evict down to the
// bound (LRU), and the report says so.
func TestFlowCapacityEviction(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	cfg := &flowstate.Config{
		Capacity:    8,
		TCPTimeouts: flowstate.TCPTimeouts{Syn: time.Hour, Established: time.Hour, Fin: time.Hour},
		UDPTimeout:  time.Hour,
		SweepEvery:  1,
		SweepLimit:  1 << 20,
	}
	eng, err := New(Config{
		Workers:   1,
		Res:       res,
		Setup:     func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		FlowTable: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), burst(lbFlows(32), 1, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flow == nil || rep.Flow.Evicted == 0 {
		t.Fatalf("no evictions reported: %+v", rep.Flow)
	}
	n, keys := serverConns(eng)
	if n > 8 {
		t.Fatalf("server holds %d conns, capacity 8", n)
	}
	if rep.Flow.Occupancy != uint64(n) || rep.Flow.Peak < rep.Flow.Occupancy {
		t.Fatalf("flow report inconsistent with state: %+v vs %d entries", rep.Flow, n)
	}
	for _, k := range keys {
		if visible, _ := eng.sws[0].VisibleEntry("conns", k); !visible {
			t.Fatalf("surviving entry %v not visible on the switch", k)
		}
	}
	if sws := eng.sws[0].Stats(); sws.TableEntries["conns"] != n {
		t.Fatalf("switch holds %d entries, server %d", sws.TableEntries["conns"], n)
	}
}

// TestEvictNonePolicy: EvictNone reports the overflow without removing
// entries.
func TestEvictNonePolicy(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	cfg := aggressiveFlowTable(4)
	cfg.EvictPolicy = flowstate.EvictNone
	cfg.TCPTimeouts = flowstate.TCPTimeouts{Syn: time.Hour, Established: time.Hour, Fin: time.Hour}
	cfg.UDPTimeout = time.Hour
	eng, err := New(Config{
		Workers:   1,
		Res:       res,
		Setup:     func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		FlowTable: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), burst(lbFlows(16), 1, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flow.Evicted != 0 {
		t.Fatalf("EvictNone evicted %d entries", rep.Flow.Evicted)
	}
	if n, _ := serverConns(eng); n != 16 {
		t.Fatalf("server holds %d conns, want all 16 under EvictNone", n)
	}
	if rep.Flow.Occupancy != 16 {
		t.Fatalf("occupancy = %d, want 16", rep.Flow.Occupancy)
	}
}

// TestReconfigureFlowTableFirstArm: a session opened without a flow
// table gains one mid-run through Reconfigure; pre-arming entries are
// adopted (not expired retroactively) and then age out normally.
func TestReconfigureFlowTableFirstArm(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	flows := lbFlows(6)
	eng, err := New(Config{
		Workers: 1,
		Res:     res,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(burst(flows, 2, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if eng.FlowConfig() != nil {
		t.Fatal("unarmed engine reports a flow config")
	}
	if rep, err := eng.LiveReport(); err != nil || rep.Flow != nil {
		t.Fatalf("unarmed engine reports a flow section: %+v, %v", rep.Flow, err)
	}

	if err := eng.Reconfigure(Reconfig{FlowTable: aggressiveFlowTable(500)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.FlowConfig(); got == nil || got.Capacity != 500 {
		t.Fatalf("FlowConfig after arm = %+v", got)
	}
	// Distinct later flows keep virtual time moving. The first feed's
	// settle sweep adopts the pre-arming entries as touched-now (t=10ms);
	// the second feed, 2ms later, pushes them past the 1ms idle timeout.
	late := lbFlows(12)[6:]
	if err := eng.Feed(burst(late, 1, int64(10*time.Millisecond), 0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(burst(late, 1, int64(12*time.Millisecond), 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flow == nil || rep.Flow.Capacity != 500 {
		t.Fatalf("flow report after first-arm: %+v", rep.Flow)
	}
	if rep.Flow.Expired < uint64(len(flows)) {
		t.Fatalf("expired = %d, want >= %d (the pre-arming flows)", rep.Flow.Expired, len(flows))
	}
}

// TestReconfigureFlowTableInvalid: a bad retune is rejected up front
// without disturbing the run.
func TestReconfigureFlowTableInvalid(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	eng, err := New(Config{
		Workers:   1,
		Res:       res,
		Setup:     func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		FlowTable: aggressiveFlowTable(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Reconfigure(Reconfig{FlowTable: &flowstate.Config{Capacity: -5}}); err == nil {
		t.Fatal("negative-capacity retune accepted")
	}
	if got := eng.FlowConfig(); got == nil || got.Capacity != 100 {
		t.Fatalf("failed retune disturbed the config: %+v", got)
	}
	if _, err := eng.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidFlowTableConfig: New rejects a bad lifecycle config.
func TestInvalidFlowTableConfig(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	_, err := New(Config{
		Workers:   1,
		Res:       res,
		FlowTable: &flowstate.Config{Capacity: 0},
	})
	if err == nil {
		t.Fatal("zero-capacity flow table accepted")
	}
}

// TestFlowLifecycleEightWorkersRace drives the lifecycle at 8 workers
// with per-packet sweeps, concurrent live reports, and a mid-stream
// retune — the -race soak for the tracker's atomics and the per-worker
// sweep/touch paths.
func TestFlowLifecycleEightWorkersRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak; runs in full mode and CI (-race)")
	}
	_, res := compileMB(t, "l4lb")
	flows := lbFlows(64)
	eng, err := New(Config{
		Workers:   8,
		Res:       res,
		Setup:     func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		FlowTable: aggressiveFlowTable(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- eng.Feed(roundRobin(flows, 40, 25))
	}()
	for i := 0; i < 4; i++ {
		if _, err := eng.LiveReport(); err != nil {
			t.Error(err)
			break
		}
		if i == 1 {
			retune := aggressiveFlowTable(128)
			retune.UDPTimeout = 2 * time.Millisecond
			if err := eng.Reconfigure(Reconfig{FlowTable: retune}); err != nil {
				t.Error(err)
				break
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered != 64*40 {
		t.Fatalf("delivered %d of %d", rep.Stats.Delivered, 64*40)
	}
	if rep.Flow == nil || rep.Flow.Capacity != 128 {
		t.Fatalf("flow report after retune: %+v", rep.Flow)
	}
}

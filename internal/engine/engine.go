// Package engine is the concurrent sharded packet engine: the runtime
// counterpart of the netsim testbed's single-threaded virtual-time model.
// An RSS-style flow-hash dispatcher fans packets out to N workers, each
// owning one shard of the middlebox server (its own authoritative state,
// like a DPDK core with per-core tables); the switch pipeline runs as a
// shared stage whose data plane takes only a read lock; and the §4.3.3
// write-back slow path is a real bounded channel drained by a dedicated
// control-plane goroutine that stages, flips, and merges batches.
//
// Ordering guarantees: packets of one flow always hash to the same worker
// and each worker runs one packet to completion before starting the next,
// so per-flow processing (and delivery-callback) order equals arrival
// order — the paper's run-to-completion claim (§4.4), now exercised under
// real goroutine concurrency rather than modeled. Cross-flow order is
// unspecified.
//
// The control-plane channel is asynchronous across workers but committed
// per flow: after emitting a write-back batch, a worker records it as
// pending and only stalls a later packet of the SAME flow on the drainer's
// apply (§4.3.3 output commit, narrowed from the worker to the flow).
// Workers pull packets in batches and close each batch with a barrier on
// every still-pending apply, so the commit wait is amortized across the
// batch instead of paid before every next packet. Because a flow's packets
// all land on one worker, a flow can never observe the switch missing its
// own earlier write-back — the remaining stale window is cross-flow only,
// where flow sharding makes it benign: a flow that misses simply takes the
// slow path, and its own shard's authoritative state gives the right
// answer. §7 cache fills stay fully fire-and-forget (a stale fill just
// re-punts).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gallium/internal/ir"
	"gallium/internal/netsim"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/serverrt"
	"gallium/internal/switchsim"
)

// Workload is a streaming packet source. Generate must produce packets in
// non-decreasing injection-time order; Tuples announces the five-tuples in
// advance so scenarios can pre-install per-flow configuration (firewall
// whitelists). trafficgen's generators satisfy it.
type Workload interface {
	Tuples() []packet.FiveTuple
	Generate(emit func(tNs int64, pkt *packet.Packet) error) error
}

// Config describes one engine instance.
type Config struct {
	// Mode is Offloaded (default for the zero Mode) or Software.
	Mode netsim.Mode
	// Workers is the number of server shards; <=0 means 1.
	Workers int
	// Batch is how many queued packets a worker pulls per batch (one
	// blocking receive, then a non-blocking drain). Within a batch,
	// write-back commits overlap with other flows' packets — a worker only
	// stalls a packet on its OWN flow's pending commit — and the batch ends
	// with one barrier on everything still in flight, amortizing the
	// output-commit wait over the batch. <=0 means 32.
	Batch int
	// Res is required in Offloaded mode.
	Res *partition.Result
	// Prog is required in Software mode.
	Prog *ir.Program
	// Model is the virtual-time cost model; the zero value means defaults.
	Model netsim.CostModel
	// Setup seeds one shard's middlebox state (shard in [0, Workers)).
	// Configuration must be identical across shards except for explicitly
	// partitioned allocators (see middleboxes.ConfigureShard).
	Setup func(shard int, st *ir.State)
	// Obs, when non-nil, receives metrics: per-worker counters plus
	// read-time "engine.*" aggregates. Nil disables observability.
	Obs *obs.Registry
	// QueueDepth bounds each worker's ingress channel; <=0 means 256.
	QueueDepth int
	// CtlQueue bounds the control-plane slow-path channel; <=0 means 256.
	CtlQueue int
	// OnDelivery, when non-nil, observes every packet fate. It is invoked
	// from worker goroutines concurrently (per-flow order preserved); the
	// callback must be safe for concurrent use.
	OnDelivery func(Delivery)
}

// ctlBatch is one packet's replicated-state updates traveling the
// slow-path channel to the control-plane drainer.
type ctlBatch struct {
	updates []switchsim.Update
	// punt marks §7 cache-mode batches, which the drainer classifies into
	// fills and synchronous updates before staging.
	punt bool
	// applied, when non-nil, is closed once the drainer has applied the
	// batch: the sending worker blocks on it before its next packet
	// (§4.3.3 output commit, extended per worker — see Run's doc).
	applied chan struct{}
}

// Engine runs workloads through the concurrent sharded pipeline. Build
// one with New; each Engine runs at most one workload (state carries the
// traffic history, as on a real deployment).
type Engine struct {
	cfg     Config
	sw      *switchsim.Switch
	workers []*worker

	ctl    chan ctlBatch
	ctlWG  sync.WaitGroup
	cancel context.CancelFunc

	ctlBatches  atomic.Int64
	ctlOps      atomic.Int64
	ctlRejected atomic.Int64

	ran      atomic.Bool
	failOnce sync.Once
	runErr   error
}

// New builds an engine: one server shard per worker, all seeded through
// cfg.Setup, and (in offloaded mode) a shared switch seeded from shard 0's
// configured state via the ordinary control plane.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Mode == 0 {
		cfg.Mode = netsim.Offloaded
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.CtlQueue <= 0 {
		cfg.CtlQueue = 256
	}
	if cfg.Model == (netsim.CostModel{}) {
		cfg.Model = netsim.DefaultModel()
	}
	e := &Engine{cfg: cfg}
	switch cfg.Mode {
	case netsim.Offloaded:
		if cfg.Res == nil {
			return nil, fmt.Errorf("engine: offloaded mode needs a partition result")
		}
		e.sw = switchsim.New(cfg.Res)
	case netsim.Software:
		if cfg.Prog == nil {
			return nil, fmt.Errorf("engine: software mode needs a program")
		}
	default:
		return nil, fmt.Errorf("engine: unknown mode %v", cfg.Mode)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:   i,
			eng:  e,
			jobs: make(chan job, cfg.QueueDepth),
			hLat: obs.NewHistogram(nil),
			// Decorrelate the per-worker jitter streams.
			jitterState: uint64(i+1) * 0x9E3779B97F4A7C15,
		}
		if e.sw != nil {
			w.srv = serverrt.New(cfg.Res)
			if cfg.Setup != nil {
				cfg.Setup(i, w.srv.State)
			}
		} else {
			w.sft = serverrt.NewSoftware(cfg.Prog)
			if cfg.Setup != nil {
				cfg.Setup(i, w.sft.State)
			}
		}
		e.workers = append(e.workers, w)
	}
	if e.sw != nil && cfg.Setup != nil {
		if err := e.sw.SeedFrom(e.workers[0].srv.State); err != nil {
			return nil, err
		}
	}
	e.instrument(cfg.Obs)
	return e, nil
}

// instrument wires per-worker metrics and registers the read-time
// aggregates: "engine.*" counters are CounterFuncs summing the per-worker
// atomics, and "engine.latency_ns" is a merged histogram over the
// per-worker latency parts — the hot path never touches shared metrics.
func (e *Engine) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if e.sw != nil {
		e.sw.Instrument(reg)
	}
	parts := make([]*obs.Histogram, 0, len(e.workers))
	for _, w := range e.workers {
		if w.srv != nil {
			w.srv.Instrument(reg)
		}
		if w.sft != nil {
			w.sft.Instrument(reg)
		}
		prefix := fmt.Sprintf("engine.worker.%d.", w.id)
		w.c = workerCounters{
			packets:   reg.Counter(prefix + "packets"),
			delivered: reg.Counter(prefix + "delivered"),
			fast:      reg.Counter(prefix + "fastpath"),
			slow:      reg.Counter(prefix + "slowpath"),
		}
		parts = append(parts, w.hLat)
	}
	sum := func(pick func(workerCounters) *obs.Counter) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, w := range e.workers {
				n += pick(w.c).Value()
			}
			return n
		}
	}
	reg.CounterFunc("engine.packets", sum(func(c workerCounters) *obs.Counter { return c.packets }))
	reg.CounterFunc("engine.delivered", sum(func(c workerCounters) *obs.Counter { return c.delivered }))
	reg.CounterFunc("engine.fastpath", sum(func(c workerCounters) *obs.Counter { return c.fast }))
	reg.CounterFunc("engine.slowpath", sum(func(c workerCounters) *obs.Counter { return c.slow }))
	reg.MergedHistogram("engine.latency_ns", parts...)
}

// fail records the first error and aborts the run.
func (e *Engine) fail(err error) {
	e.failOnce.Do(func() {
		e.runErr = err
		if e.cancel != nil {
			e.cancel()
		}
	})
}

// Run streams the workload through the engine: a dispatcher goroutine (the
// caller) hashes each packet to its flow's worker, workers process to
// completion in parallel, and the control-plane drainer applies write-back
// batches. Run blocks until the workload is exhausted and every in-flight
// packet and control batch has settled, then reports. Cancel ctx to abort:
// queued packets are drained unprocessed and ctx.Err() is returned.
func (e *Engine) Run(ctx context.Context, wl Workload) (*Report, error) {
	if !e.ran.CompareAndSwap(false, true) {
		return nil, errors.New("engine: Run may be called at most once per Engine")
	}
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.cancel = cancel

	if e.sw != nil {
		e.ctl = make(chan ctlBatch, e.cfg.CtlQueue)
		e.ctlWG.Add(1)
		go e.drainCtl()
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(runCtx)
		}(w)
	}

	var seq, lastT int64
	first := true
	genErr := wl.Generate(func(tNs int64, pkt *packet.Packet) error {
		if err := runCtx.Err(); err != nil {
			return err
		}
		if !first && tNs < lastT {
			return fmt.Errorf("engine: out-of-order injection (%d < %d)", tNs, lastT)
		}
		first = false
		lastT = tNs
		flow, _ := pkt.Tuple()
		j := job{seq: seq, tNs: tNs, flow: flow, pkt: pkt}
		seq++
		w := e.workers[netsim.RSSShard(pkt, len(e.workers))]
		select {
		case w.jobs <- j:
			return nil
		case <-runCtx.Done():
			return runCtx.Err()
		}
	})

	// Shutdown runs unconditionally so no goroutine outlives Run, even
	// when generation aborted.
	for _, w := range e.workers {
		close(w.jobs)
	}
	wg.Wait()
	if e.ctl != nil {
		close(e.ctl)
		e.ctlWG.Wait()
	}

	if e.runErr != nil {
		return nil, e.runErr
	}
	if genErr != nil {
		return nil, genErr
	}
	return e.report(time.Since(start)), nil
}

// drainCtl is the control-plane goroutine: it applies each slow-path batch
// through the §4.3.3 protocol — stage every update, one visibility flip,
// merge — until the channel closes. Full tables are soft failures (the
// entry stays server-only and its flow keeps taking the slow path).
func (e *Engine) drainCtl() {
	defer e.ctlWG.Done()
	for b := range e.ctl {
		toStage := b.updates
		if b.punt {
			fills, syncs := serverrt.ClassifyUpdates(e.sw, b.updates)
			toStage = append(fills, syncs...)
		}
		staged := 0
		for _, u := range toStage {
			if err := e.sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					e.ctlRejected.Add(1)
					continue
				}
				if b.applied != nil {
					close(b.applied)
				}
				e.fail(err)
				return
			}
			staged++
		}
		if staged > 0 {
			e.sw.FlipVisibility()
			e.sw.MergeWriteback()
			e.ctlBatches.Add(1)
			e.ctlOps.Add(int64(staged))
		}
		if b.applied != nil {
			close(b.applied)
		}
	}
}

// SwitchStats exposes the shared switch's counters (offloaded mode only).
func (e *Engine) SwitchStats() (switchsim.Stats, bool) {
	if e.sw == nil {
		return switchsim.Stats{}, false
	}
	return e.sw.Stats(), true
}

// ShardStates returns each worker shard's authoritative middlebox state,
// indexed by shard. Only meaningful after Run has returned (workers own
// their states exclusively while running).
func (e *Engine) ShardStates() []*ir.State {
	states := make([]*ir.State, len(e.workers))
	for i, w := range e.workers {
		switch {
		case w.srv != nil:
			states[i] = w.srv.State
		case w.sft != nil:
			states[i] = w.sft.State
		}
	}
	return states
}

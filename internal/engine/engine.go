// Package engine is the concurrent sharded packet engine: the runtime
// counterpart of the netsim testbed's single-threaded virtual-time model.
// An RSS-style flow-hash dispatcher fans packets out to N workers, each
// owning one shard of the middlebox server (its own authoritative state,
// like a DPDK core with per-core tables); the switch pipeline runs as a
// shared stage whose data plane takes only a read lock; and the §4.3.3
// write-back slow path is a real bounded channel drained by a dedicated
// control-plane goroutine that stages, flips, and merges batches.
//
// Ordering guarantees: packets of one flow always hash to the same worker
// and each worker runs one packet to completion before starting the next,
// so per-flow processing (and delivery-callback) order equals arrival
// order — the paper's run-to-completion claim (§4.4), now exercised under
// real goroutine concurrency rather than modeled. Cross-flow order is
// unspecified.
//
// The control-plane channel is asynchronous across workers but committed
// per flow: after emitting a write-back batch, a worker records it as
// pending and only stalls a later packet of the SAME flow on the drainer's
// apply (§4.3.3 output commit, narrowed from the worker to the flow).
// Workers pull packets in batches and close each batch with a barrier on
// every still-pending apply, so the commit wait is amortized across the
// batch instead of paid before every next packet. Because a flow's packets
// all land on one worker, a flow can never observe the switch missing its
// own earlier write-back — the remaining stale window is cross-flow only,
// where flow sharding makes it benign: a flow that misses simply takes the
// slow path, and its own shard's authoritative state gives the right
// answer. §7 cache fills stay fully fire-and-forget (a stale fill just
// re-punts).
//
// Lifecycle: an Engine is long-lived. Start spawns the workers and the
// control-plane drainer; Feed streams one workload through them (callable
// repeatedly, injection times non-decreasing across feeds); Reconfigure
// applies a control-plane change as one atomic visibility flip while
// traffic keeps flowing; Stop joins everything and reports. Run is the
// one-shot convenience composing the three.
//
// Pipelines: Config.Stages chains several compiled middleboxes through one
// engine pass — a packet traverses stage 0's switch/server pair, then
// stage 1's, sharing the worker's (simulated) core and the single
// control-plane drainer. Single-middlebox configs are a one-stage chain.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gallium/internal/flowstate"
	"gallium/internal/ir"
	"gallium/internal/netsim"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/serverrt"
	"gallium/internal/switchsim"
)

// Workload is a streaming packet source. Generate must produce packets in
// non-decreasing injection-time order; Tuples announces the five-tuples in
// advance so scenarios can pre-install per-flow configuration (firewall
// whitelists). trafficgen's generators satisfy it.
type Workload interface {
	Tuples() []packet.FiveTuple
	Generate(emit func(tNs int64, pkt *packet.Packet) error) error
}

// StageConfig describes one stage of the engine's middlebox pipeline.
type StageConfig struct {
	// Name labels the stage (reconfig addressing, diagnostics).
	Name string
	// Res is required in Offloaded mode.
	Res *partition.Result
	// Prog is required in Software mode.
	Prog *ir.Program
	// Setup seeds one shard's middlebox state for this stage (shard in
	// [0, Workers)). Configuration must be identical across shards except
	// for explicitly partitioned allocators (middleboxes.ConfigureShard).
	Setup func(shard int, st *ir.State)
}

// Config describes one engine instance.
type Config struct {
	// Mode is Offloaded (default for the zero Mode) or Software.
	Mode netsim.Mode
	// Workers is the number of server shards; <=0 means 1.
	Workers int
	// Batch is how many queued packets a worker pulls per batch (one
	// blocking receive, then a non-blocking drain). Within a batch,
	// write-back commits overlap with other flows' packets — a worker only
	// stalls a packet on its OWN flow's pending commit — and the batch ends
	// with one barrier on everything still in flight, amortizing the
	// output-commit wait over the batch. A positive value fixes the batch
	// size; <=0 (the default) enables the per-worker adaptive controller,
	// which grows the batch under backlog and shrinks it when the queue
	// runs dry, bounded by BatchBudgetNs.
	Batch int
	// BatchBudgetNs bounds the adaptive batch controller's latency cost: a
	// worker never grows its batch beyond what it can process within this
	// budget (estimated from an EWMA of observed per-packet wall time).
	// <=0 means 200µs. Ignored when Batch is fixed.
	BatchBudgetNs int64
	// Stages is the middlebox pipeline, traversed in order. Empty Stages
	// with Res or Prog set builds the single-stage pipeline (the common
	// case); setting both is an error.
	Stages []StageConfig
	// Res is the single-stage shorthand for Stages (Offloaded mode).
	Res *partition.Result
	// Prog is the single-stage shorthand for Stages (Software mode).
	Prog *ir.Program
	// Setup is the single-stage shorthand for StageConfig.Setup.
	Setup func(shard int, st *ir.State)
	// Model is the virtual-time cost model; the zero value means defaults.
	Model netsim.CostModel
	// Obs, when non-nil, receives metrics: per-worker counters plus
	// read-time "engine.*" aggregates. Nil disables observability.
	Obs *obs.Registry
	// QueueDepth bounds each worker's ingress channel; <=0 means 256.
	QueueDepth int
	// CtlQueue bounds the control-plane slow-path channel; <=0 means 256.
	CtlQueue int
	// OnDelivery, when non-nil, observes every packet fate. It is invoked
	// from worker goroutines concurrently (per-flow order preserved); the
	// callback must be safe for concurrent use.
	OnDelivery func(Delivery)
	// FlowTable, when non-nil, bounds the pipeline's dynamic flow state:
	// per-entry last-touch stamping, protocol-aware timeouts, and
	// capacity eviction (see internal/flowstate). Capacity is engine-wide
	// and split evenly across shards. Nil disables the lifecycle; state
	// then grows without bound, as before.
	FlowTable *flowstate.Config
}

// ctlBatch is one batch of replicated-state updates traveling a
// slow-path lane to its shard's control-plane drainer.
type ctlBatch struct {
	updates []switchsim.Update
	// stage routes the batch to its pipeline stage's switch.
	stage int
	// punt marks §7 cache-mode batches, which the drainer classifies into
	// fills and synchronous updates before staging.
	punt bool
	// applied, when non-nil, is closed once the drainer has applied the
	// batch: the sending worker blocks on it before its next packet
	// (§4.3.3 output commit, extended per worker — see Run's doc). A batch
	// with no updates and a non-nil applied is a flush marker: Reconfigure
	// uses one per lane to prove the lane's FIFO has drained.
	applied chan struct{}
}

// ctlShard is one worker shard's control-plane lane: its own bounded
// channel and its own drainer goroutine, so worker N's slow-path
// write-backs never queue behind worker M's. The counter block is padded
// to cache-line boundaries — each drainer writes only its own shard's
// counters.
type ctlShard struct {
	_  [64]byte
	ch chan ctlBatch
	// batches/ops/rejected account this drainer's applied work; the
	// report sums them across shards (plus Reconfigure's direct applies).
	batches  atomic.Int64
	ops      atomic.Int64
	rejected atomic.Int64
	_        [64]byte
}

// Reconfig is one compiled control-plane change, applied by Engine.
// Reconfigure as a single atomic visibility flip. The ctlplane package
// compiles typed operations (rule swaps, pool changes, repartitions) into
// this mechanism-level form.
type Reconfig struct {
	// Stage addresses the pipeline stage being reconfigured.
	Stage int
	// Mutate, when non-nil, runs once per shard INSIDE that shard's worker
	// goroutine against its authoritative state (preserving the engine's
	// goroutine confinement), and returns any shard-owned switch updates
	// (e.g. deletions of connection entries pointing at removed backends).
	Mutate func(shard int, st *ir.State) []switchsim.Update
	// Updates are shard-independent switch updates (table replacements,
	// vector swaps, register writes) staged with the shard-owned ones and
	// flipped together.
	Updates []switchsim.Update
	// FlowTable, when non-nil, retunes (or first arms) the ENGINE-WIDE
	// flow-state lifecycle while traffic flows: each worker adopts the
	// new capacity/timeouts inside its own goroutine during the pause, so
	// the retune is atomic with respect to packet processing. Stage still
	// addresses Mutate/Updates only.
	FlowTable *flowstate.Config
}

// Engine runs workloads through the concurrent sharded pipeline. Build
// one with New; drive it either with the one-shot Run or with the
// long-lived Start / Feed / Reconfigure / Stop lifecycle.
type Engine struct {
	cfg     Config
	stages  []StageConfig
	sws     []*switchsim.Switch // per stage; nil slice in Software mode
	workers []*worker

	// lifeDyn lists each stage's dynamic maps (those the data path
	// inserts into — the lifecycle-managed tables); lifeOff marks which
	// of a stage's globals are switch-resident, so expiry of an
	// offloaded entry ships a deletion through the control plane.
	lifeDyn [][]string
	lifeOff []map[string]bool
	// flowCfg is the engine-wide lifecycle config (normalized, total
	// capacity); nil when the lifecycle is disabled. Reconfigure swaps
	// it atomically for live retuning.
	flowCfg atomic.Pointer[flowstate.Config]

	// ctls holds one control-plane lane per worker shard (offloaded mode);
	// worker i sends only to ctls[i], whose drainer stages into switch
	// lane i.
	ctls   []*ctlShard
	ctlWG  sync.WaitGroup
	wg     sync.WaitGroup
	cancel context.CancelFunc
	runCtx context.Context

	// feedMu serializes Feed calls (one dispatcher at a time); reconfMu
	// serializes Reconfigure. Feed and Reconfigure may run concurrently
	// with each other.
	feedMu   sync.Mutex
	reconfMu sync.Mutex
	seq      int64
	lastT    int64
	fedAny   bool

	started atomic.Bool
	stopped atomic.Bool
	startT  time.Time

	// rcBatches/rcOps/rcRejected account control work Reconfigure applies
	// directly (its one-flip protocol bypasses the lanes; see Reconfigure).
	rcBatches  atomic.Int64
	rcOps      atomic.Int64
	rcRejected atomic.Int64
	reconfigs  atomic.Int64

	ran      atomic.Bool
	failOnce sync.Once
	runErr   atomic.Pointer[error]
}

// normalizeStages folds the single-stage shorthand fields into Stages.
func normalizeStages(cfg *Config) error {
	if len(cfg.Stages) > 0 {
		if cfg.Res != nil || cfg.Prog != nil || cfg.Setup != nil {
			return fmt.Errorf("engine: Stages and the single-stage Res/Prog/Setup fields are mutually exclusive")
		}
		return nil
	}
	cfg.Stages = []StageConfig{{Res: cfg.Res, Prog: cfg.Prog, Setup: cfg.Setup}}
	return nil
}

// New builds an engine: one server shard per worker per stage, all seeded
// through each stage's Setup, and (in offloaded mode) one shared switch
// per stage seeded from shard 0's configured state via the ordinary
// control plane.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Mode == 0 {
		cfg.Mode = netsim.Offloaded
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Batch < 0 {
		cfg.Batch = 0 // adaptive
	}
	if cfg.BatchBudgetNs <= 0 {
		cfg.BatchBudgetNs = 200_000
	}
	if cfg.CtlQueue <= 0 {
		cfg.CtlQueue = 256
	}
	if cfg.Model == (netsim.CostModel{}) {
		cfg.Model = netsim.DefaultModel()
	}
	if err := normalizeStages(&cfg); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, stages: cfg.Stages}
	switch cfg.Mode {
	case netsim.Offloaded:
		for si, st := range e.stages {
			if st.Res == nil {
				return nil, fmt.Errorf("engine: offloaded stage %d needs a partition result", si)
			}
			sw := switchsim.New(st.Res)
			sw.ConfigureShards(cfg.Workers)
			e.sws = append(e.sws, sw)
		}
	case netsim.Software:
		for si, st := range e.stages {
			if st.Prog == nil {
				return nil, fmt.Errorf("engine: software stage %d needs a program", si)
			}
		}
	default:
		return nil, fmt.Errorf("engine: unknown mode %v", cfg.Mode)
	}
	for _, st := range e.stages {
		prog := st.Prog
		if st.Res != nil {
			prog = st.Res.Prog
		}
		e.lifeDyn = append(e.lifeDyn, flowstate.DynamicMaps(prog))
		off := map[string]bool{}
		if st.Res != nil {
			for _, g := range st.Res.OffloadedGlobals {
				off[g] = true
			}
		}
		e.lifeOff = append(e.lifeOff, off)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:   i,
			eng:  e,
			jobs: make(chan job, cfg.QueueDepth),
			hLat: obs.NewHistogram(nil),
			// Decorrelate the per-worker jitter streams.
			jitterState: uint64(i+1) * 0x9E3779B97F4A7C15,
			life:  make([]atomic.Pointer[flowstate.Tracker], len(e.stages)),
			touch: make([]func(string, ir.MapKey), len(e.stages)),
		}
		for _, st := range e.stages {
			if len(e.sws) > 0 {
				srv := serverrt.New(st.Res)
				if st.Setup != nil {
					st.Setup(i, srv.State)
				}
				w.srv = append(w.srv, srv)
			} else {
				sft := serverrt.NewSoftware(st.Prog)
				if st.Setup != nil {
					st.Setup(i, sft.State)
				}
				w.sft = append(w.sft, sft)
			}
		}
		e.workers = append(e.workers, w)
	}
	for si, st := range e.stages {
		if len(e.sws) > 0 && st.Setup != nil {
			if err := e.sws[si].SeedFrom(e.workers[0].srv[si].State); err != nil {
				return nil, err
			}
		}
	}
	if cfg.FlowTable != nil {
		if err := cfg.FlowTable.Validate(); err != nil {
			return nil, fmt.Errorf("engine: flow table: %w", err)
		}
		n := cfg.FlowTable.Normalized()
		e.flowCfg.Store(&n)
		for _, w := range e.workers {
			w.setLifecycle(n)
		}
	}
	e.instrument(cfg.Obs)
	return e, nil
}

// instrument wires per-worker metrics and registers the read-time
// aggregates: "engine.*" counters are CounterFuncs summing the per-worker
// atomics, and "engine.latency_ns" is a merged histogram over the
// per-worker latency parts — the hot path never touches shared metrics.
func (e *Engine) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, sw := range e.sws {
		sw.Instrument(reg)
	}
	parts := make([]*obs.Histogram, 0, len(e.workers))
	for _, w := range e.workers {
		for _, srv := range w.srv {
			srv.Instrument(reg)
		}
		for _, sft := range w.sft {
			sft.Instrument(reg)
		}
		prefix := fmt.Sprintf("engine.worker.%d.", w.id)
		w.c = workerCounters{
			packets:   reg.Counter(prefix + "packets"),
			delivered: reg.Counter(prefix + "delivered"),
			fast:      reg.Counter(prefix + "fastpath"),
			slow:      reg.Counter(prefix + "slowpath"),
		}
		parts = append(parts, w.hLat)
	}
	sum := func(pick func(workerCounters) *obs.Counter) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, w := range e.workers {
				n += pick(w.c).Value()
			}
			return n
		}
	}
	reg.CounterFunc("engine.packets", sum(func(c workerCounters) *obs.Counter { return c.packets }))
	reg.CounterFunc("engine.delivered", sum(func(c workerCounters) *obs.Counter { return c.delivered }))
	reg.CounterFunc("engine.fastpath", sum(func(c workerCounters) *obs.Counter { return c.fast }))
	reg.CounterFunc("engine.slowpath", sum(func(c workerCounters) *obs.Counter { return c.slow }))
	reg.CounterFunc("engine.reconfigs", func() uint64 { return uint64(e.reconfigs.Load()) })
	reg.MergedHistogram("engine.latency_ns", parts...)
	if e.flowCfg.Load() != nil {
		flowSum := func(pick func(flowstate.Stats) uint64) func() uint64 {
			return func() uint64 {
				var n uint64
				for _, fs := range e.flowTrackerStats() {
					n += pick(fs)
				}
				return n
			}
		}
		reg.CounterFunc("engine.flow.occupancy", flowSum(func(s flowstate.Stats) uint64 { return s.Occupancy }))
		reg.CounterFunc("engine.flow.expired", flowSum(func(s flowstate.Stats) uint64 { return s.Expired }))
		reg.CounterFunc("engine.flow.evicted", flowSum(func(s flowstate.Stats) uint64 { return s.Evicted }))
	}
}

// flowTrackerStats snapshots every armed tracker's counters (atomics, so
// safe to read while workers run).
func (e *Engine) flowTrackerStats() []flowstate.Stats {
	var out []flowstate.Stats
	for _, w := range e.workers {
		for si := range w.life {
			if tr := w.life[si].Load(); tr != nil {
				out = append(out, tr.Stats())
			}
		}
	}
	return out
}

// fail records the first error and aborts the run.
func (e *Engine) fail(err error) {
	e.failOnce.Do(func() {
		e.runErr.Store(&err)
		if e.cancel != nil {
			e.cancel()
		}
	})
}

// err returns the first recorded failure, if any.
func (e *Engine) err() error {
	if p := e.runErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Start spawns the worker goroutines and (in offloaded mode) one
// control-plane drainer per worker shard. It may be called once per
// Engine; cancel ctx to abort everything in flight.
func (e *Engine) Start(ctx context.Context) error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("engine: Start may be called at most once per Engine")
	}
	e.startT = time.Now()
	e.runCtx, e.cancel = context.WithCancel(ctx)
	if len(e.sws) > 0 {
		e.ctls = make([]*ctlShard, len(e.workers))
		for i := range e.ctls {
			e.ctls[i] = &ctlShard{ch: make(chan ctlBatch, e.cfg.CtlQueue)}
			e.ctlWG.Add(1)
			go e.drainCtl(i)
		}
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *worker) {
			defer e.wg.Done()
			w.loop(e.runCtx)
		}(w)
	}
	return nil
}

// Feed streams one workload through the running engine and blocks until
// every packet of it (and every control batch those packets emitted) has
// settled. Injection times must be non-decreasing across successive Feeds
// — the engine models one continuous deployment, so virtual time cannot
// restart. Feed may not run concurrently with itself or Stop; it MAY run
// concurrently with Reconfigure (that is the point of the live control
// plane).
func (e *Engine) Feed(wl Workload) error {
	if !e.started.Load() || e.stopped.Load() {
		return errors.New("engine: Feed requires a started, unstopped engine")
	}
	e.feedMu.Lock()
	defer e.feedMu.Unlock()
	genErr := wl.Generate(func(tNs int64, pkt *packet.Packet) error {
		if err := e.runCtx.Err(); err != nil {
			return err
		}
		if e.fedAny && tNs < e.lastT {
			return fmt.Errorf("engine: out-of-order injection (%d < %d)", tNs, e.lastT)
		}
		e.fedAny = true
		e.lastT = tNs
		flow, _ := pkt.DispatchTuple()
		j := job{seq: e.seq, tNs: tNs, flow: flow, pkt: pkt}
		e.seq++
		w := e.workers[netsim.RSSShard(pkt, len(e.workers))]
		select {
		case w.jobs <- j:
			return nil
		case <-e.runCtx.Done():
			return e.runCtx.Err()
		}
	})
	e.settle(nil)
	if err := e.err(); err != nil {
		return err
	}
	return genErr
}

// Dispatch injects one packet into the running engine without settling:
// the streaming ingress for real-I/O front ends, where a barrier per
// datagram would defeat batching. It returns the packet's sequence
// number; the OnDelivery callback reports its fate asynchronously.
// Injection times are clamped monotone (real clocks jitter; virtual time
// cannot restart). Dispatch serializes with Feed on the dispatcher lock
// and may run concurrently with Reconfigure.
func (e *Engine) Dispatch(tNs int64, pkt *packet.Packet) (int64, error) {
	if !e.started.Load() || e.stopped.Load() {
		return 0, errors.New("engine: Dispatch requires a started, unstopped engine")
	}
	e.feedMu.Lock()
	defer e.feedMu.Unlock()
	if err := e.runCtx.Err(); err != nil {
		return 0, err
	}
	if e.fedAny && tNs < e.lastT {
		tNs = e.lastT
	}
	e.fedAny = true
	e.lastT = tNs
	flow, _ := pkt.DispatchTuple()
	seq := e.seq
	j := job{seq: seq, tNs: tNs, flow: flow, pkt: pkt}
	e.seq++
	w := e.workers[netsim.RSSShard(pkt, len(e.workers))]
	select {
	case w.jobs <- j:
		return seq, nil
	case <-e.runCtx.Done():
		return 0, e.runCtx.Err()
	}
}

// settle injects a barrier control job into every worker and blocks until
// each has finished all previously queued packets and retired their
// pending write-back applies. When stats is non-nil it additionally
// receives a copy of each worker's counters, taken inside the worker
// goroutine (race-free even while traffic flows).
func (e *Engine) settle(stats []netsim.Stats) {
	var wg sync.WaitGroup
	for i, w := range e.workers {
		wg.Add(1)
		i := i
		j := job{ctrl: func(w *worker) {
			// A settle barrier is a quiescent point: run a FULL expiry
			// sweep (exact timeouts + deterministic LRU) before waiting
			// out the in-flight applies, so its deletions land inside
			// this barrier too.
			if w.lifeOn {
				w.sweep(e.runCtx, true)
			}
			w.waitAll(e.runCtx)
			if stats != nil {
				stats[i] = w.stats
			}
			wg.Done()
		}}
		select {
		case w.jobs <- j:
		case <-e.runCtx.Done():
			// Aborting: the worker may never pull the barrier; don't wait.
			wg.Done()
		}
	}
	wg.Wait()
}

// Reconfigure applies one compiled control-plane change atomically with
// respect to the data plane: every worker pauses at its current packet
// boundary, applies the per-shard mutation against its own state (in its
// own goroutine), the collected switch updates are staged and flipped as
// ONE batch through the §4.3.3 write-back path, and only then do the
// workers resume. Packets queue (bounded, with backpressure) during the
// pause instead of dropping, so a reconfiguration loses zero packets; a
// packet processed before the flip sees the old configuration everywhere,
// a packet after sees the new — never a mix.
func (e *Engine) Reconfigure(r Reconfig) error {
	if !e.started.Load() || e.stopped.Load() {
		return errors.New("engine: Reconfigure requires a started, unstopped engine")
	}
	if r.Stage < 0 || r.Stage >= len(e.stages) {
		return fmt.Errorf("engine: reconfigure stage %d out of range (pipeline has %d stages)", r.Stage, len(e.stages))
	}
	if r.FlowTable != nil {
		if err := r.FlowTable.Validate(); err != nil {
			return fmt.Errorf("engine: flow table: %w", err)
		}
	}
	e.reconfMu.Lock()
	defer e.reconfMu.Unlock()
	ctx := e.runCtx

	var mu sync.Mutex
	shardUpdates := append([]switchsim.Update(nil), r.Updates...)
	release := make(chan struct{})
	ready := make(chan struct{}, len(e.workers))
	paused := 0
	for i, w := range e.workers {
		i := i
		j := job{ctrl: func(w *worker) {
			if r.Mutate != nil {
				ups := r.Mutate(i, w.stageState(r.Stage))
				if len(ups) > 0 {
					mu.Lock()
					shardUpdates = append(shardUpdates, ups...)
					mu.Unlock()
				}
			}
			if r.FlowTable != nil {
				// Retune (or first arm) this shard's lifecycle inside its
				// own goroutine, preserving state confinement.
				w.setLifecycle(r.FlowTable.Normalized())
			}
			ready <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
		}}
		select {
		case w.jobs <- j:
			paused++
		case <-ctx.Done():
		}
	}
	for n := 0; n < paused; n++ {
		select {
		case <-ready:
		case <-ctx.Done():
			close(release)
			return ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		close(release)
		return err
	}

	// All workers are quiescent. Drain every shard's control lane with a
	// flush marker: worker i is the only sender on lane i and is paused,
	// so a marker enqueued now is behind every batch staged before the
	// pause, and its apply proves the lane is empty and its drainer idle.
	// Then fold the target switch's per-shard lane overlays into the main
	// tables (a stale lane entry would otherwise shadow this
	// reconfiguration's staged deletions) and apply the whole
	// reconfiguration directly: stage everything, flip ONCE, merge. The
	// intermediate fold publication is unobservable — no worker processes
	// packets until release — so the single FlipVisibility snapshot store
	// remains the §4.3.3 atomicity for the data plane.
	if len(e.sws) > 0 {
		markers := make([]chan struct{}, 0, len(e.ctls))
		for _, cs := range e.ctls {
			m := make(chan struct{})
			select {
			case cs.ch <- ctlBatch{stage: r.Stage, applied: m}:
				markers = append(markers, m)
			case <-ctx.Done():
				close(release)
				return ctx.Err()
			}
		}
		for _, m := range markers {
			select {
			case <-m:
			case <-ctx.Done():
				close(release)
				return ctx.Err()
			}
		}
		sw := e.sws[r.Stage]
		sw.FoldShards()
		staged := 0
		for _, u := range shardUpdates {
			if err := sw.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					e.rcRejected.Add(1)
					continue
				}
				close(release)
				e.fail(err)
				return err
			}
			staged++
		}
		sw.FlipVisibility()
		sw.CompactWriteback()
		sw.MarkReconfig()
		e.rcBatches.Add(1)
		e.rcOps.Add(int64(staged))
	}
	if r.FlowTable != nil {
		n := r.FlowTable.Normalized()
		e.flowCfg.Store(&n)
	}
	close(release)
	e.reconfigs.Add(1)
	if err := e.err(); err != nil {
		return err
	}
	return ctx.Err()
}

// FlowConfig returns the engine-wide flow-table config (normalized), or
// nil when the lifecycle is disabled.
func (e *Engine) FlowConfig() *flowstate.Config {
	return e.flowCfg.Load()
}

// Stop closes the ingress, joins every worker and the control-plane
// drainer, and reports. No Feed or Reconfigure may be in flight or issued
// afterwards.
func (e *Engine) Stop() (*Report, error) {
	if !e.started.Load() {
		return nil, errors.New("engine: Stop requires Start")
	}
	if !e.stopped.CompareAndSwap(false, true) {
		return nil, errors.New("engine: Stop may be called at most once per Engine")
	}
	for _, w := range e.workers {
		close(w.jobs)
	}
	e.wg.Wait()
	for _, cs := range e.ctls {
		close(cs.ch)
	}
	e.ctlWG.Wait()
	// Fold every lane overlay into the main tables so post-run table
	// contents and VisibleEntry are exact (no lane-resident remainder).
	for _, sw := range e.sws {
		sw.FoldShards()
	}
	e.cancel()
	if err := e.err(); err != nil {
		return nil, err
	}
	per := make([]netsim.Stats, len(e.workers))
	for i, w := range e.workers {
		per[i] = w.stats
	}
	return e.buildReport(per, time.Since(e.startT)), nil
}

// LiveReport settles every worker at a barrier and reports the traffic
// processed so far without stopping the engine: per-worker counters are
// copied inside each worker's goroutine, so the snapshot is race-free even
// while another goroutine keeps feeding. It reflects all packets dispatched
// before the call; packets fed concurrently may or may not be included.
func (e *Engine) LiveReport() (*Report, error) {
	if !e.started.Load() || e.stopped.Load() {
		return nil, errors.New("engine: LiveReport requires a started, unstopped engine")
	}
	per := make([]netsim.Stats, len(e.workers))
	e.settle(per)
	if err := e.err(); err != nil {
		return nil, err
	}
	return e.buildReport(per, time.Since(e.startT)), nil
}

// Run streams the workload through the engine: a dispatcher goroutine (the
// caller) hashes each packet to its flow's worker, workers process to
// completion in parallel, and the control-plane drainer applies write-back
// batches. Run blocks until the workload is exhausted and every in-flight
// packet and control batch has settled, then reports. Cancel ctx to abort:
// queued packets are drained unprocessed and ctx.Err() is returned.
func (e *Engine) Run(ctx context.Context, wl Workload) (*Report, error) {
	if !e.ran.CompareAndSwap(false, true) {
		return nil, errors.New("engine: Run may be called at most once per Engine")
	}
	if err := e.Start(ctx); err != nil {
		return nil, err
	}
	feedErr := e.Feed(wl)
	rep, stopErr := e.Stop()
	if feedErr != nil {
		return nil, feedErr
	}
	if stopErr != nil {
		return nil, stopErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// drainCtl is one shard's control-plane drainer: it applies each of its
// worker's slow-path batches through the §4.3.3 protocol — stage every
// update, one visibility flip, merge — until the lane closes. Plain table
// inserts and deletes (the steady-state slow path) ride the shard's own
// switch lane, so concurrent drainers never serialize on the global
// control-plane mutex; registers, vectors, and whole-table replacements
// keep the global path. Full tables are soft failures (the entry stays
// server-only and its flow keeps taking the slow path).
func (e *Engine) drainCtl(shard int) {
	cs := e.ctls[shard]
	defer e.ctlWG.Done()
	for b := range cs.ch {
		sw := e.sws[b.stage]
		toStage := b.updates
		if b.punt {
			fills, syncs := serverrt.ClassifyUpdates(sw, b.updates)
			toStage = append(fills, syncs...)
		}
		stagedLane, stagedGlobal := 0, 0
		failed := false
		for _, u := range toStage {
			var err error
			if switchsim.LaneEligible(u) {
				if err = sw.StageShard(shard, u); err == nil {
					stagedLane++
				}
			} else {
				if err = sw.StageWriteback(u); err == nil {
					stagedGlobal++
				}
			}
			if err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					cs.rejected.Add(1)
					continue
				}
				if b.applied != nil {
					close(b.applied)
				}
				e.fail(err)
				failed = true
				break
			}
		}
		if failed {
			return
		}
		// Global state flips before the lane: in a mixed batch (only §7
		// punts mix the two) the lane's entries must not become visible
		// ahead of the global entries flipped with them.
		if stagedGlobal > 0 {
			sw.FlipVisibility()
			sw.CompactWriteback()
		}
		if stagedLane > 0 {
			sw.FlipShard(shard)
			// Amortized: small overlays stay in place (this shard's lookups
			// read them first anyway); the fold happens once they outgrow
			// the main table's sqrt threshold. A per-batch fold would copy
			// the whole main table copy-on-write per slow-path insert —
			// quadratic under a flow flood.
			sw.CompactShard(shard)
		}
		if stagedLane+stagedGlobal > 0 {
			cs.batches.Add(1)
			cs.ops.Add(int64(stagedLane + stagedGlobal))
		}
		if b.applied != nil {
			close(b.applied)
		}
	}
}

// SwitchStats exposes the first stage's switch counters (offloaded mode
// only); for chained pipelines use SwitchStatsAt.
func (e *Engine) SwitchStats() (switchsim.Stats, bool) {
	return e.SwitchStatsAt(0)
}

// SwitchStatsAt exposes one pipeline stage's switch counters.
func (e *Engine) SwitchStatsAt(stage int) (switchsim.Stats, bool) {
	if stage < 0 || stage >= len(e.sws) {
		return switchsim.Stats{}, false
	}
	return e.sws[stage].Stats(), true
}

// Stages reports the pipeline's stage count.
func (e *Engine) Stages() int { return len(e.stages) }

// Uptime reports wall-clock time since Start.
func (e *Engine) Uptime() time.Duration {
	if !e.started.Load() {
		return 0
	}
	return time.Since(e.startT)
}

// StageName reports a stage's label ("" when unnamed).
func (e *Engine) StageName(stage int) string {
	if stage < 0 || stage >= len(e.stages) {
		return ""
	}
	return e.stages[stage].Name
}

// ShardStates returns each worker shard's authoritative middlebox state
// for the FIRST pipeline stage, indexed by shard. Only meaningful after
// the engine stopped (workers own their states exclusively while running).
func (e *Engine) ShardStates() []*ir.State {
	return e.ShardStatesAt(0)
}

// ShardStatesAt returns each shard's state for one pipeline stage.
func (e *Engine) ShardStatesAt(stage int) []*ir.State {
	states := make([]*ir.State, len(e.workers))
	for i, w := range e.workers {
		states[i] = w.stageState(stage)
	}
	return states
}

package engine

import (
	"sync/atomic"
	"testing"
)

// False-sharing audit benchmarks. The engine pads every per-worker
// mutable block — worker hot state, ctl lane counters, switchsim lane
// stats — with 64-byte guards so adjacent shards never share a cache
// line. These benchmarks measure the exact effect being bought: eight
// counter slots bumped by concurrent goroutines, in the packed layout
// (adjacent slots share lines, one Int64 apart) versus the engine's
// padded layout (one slot per line).
//
//	go test ./internal/engine/ -run - -bench FalseSharing -cpu 1,2,4,8
//
// On a multi-core host the packed layout degrades with -cpu as every
// bump invalidates the neighbors' line; the padded layout holds flat.
// On a single-core host the two are equal — there is no cross-core
// traffic to eliminate, which is the honest null result and why the
// scale gate (CheckScaleGate) loud-skips below 4 cores instead of
// claiming a measurement.

const benchSlots = 8

// packedSlot is the layout the audit removed: nothing keeps neighbors
// off this slot's cache line.
type packedSlot struct {
	n atomic.Int64
}

// paddedSlot is the engine's layout (worker, ctl, laneStats): guards on
// both sides give each slot a line of its own.
type paddedSlot struct {
	_ [64]byte
	n atomic.Int64
	_ [56]byte
}

// benchSink defeats dead-code elimination of the counter sums.
var benchSink int64

func runSlots(b *testing.B, bump func(id int), load func() int64) {
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % benchSlots
		for pb.Next() {
			bump(id)
		}
	})
	benchSink = load()
}

func BenchmarkFalseSharingPacked(b *testing.B) {
	slots := make([]packedSlot, benchSlots)
	runSlots(b,
		func(id int) { slots[id].n.Add(1) },
		func() int64 { return slots[0].n.Load() })
}

func BenchmarkFalseSharingPadded(b *testing.B) {
	slots := make([]paddedSlot, benchSlots)
	runSlots(b,
		func(id int) { slots[id].n.Add(1) },
		func() int64 { return slots[0].n.Load() })
}

package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

func compileMB(t *testing.T, name string) (*ir.Program, *partition.Result) {
	t.Helper()
	spec, err := middleboxes.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

// scripted is a minimal Workload for tests.
type scripted struct {
	tuples []packet.FiveTuple
	gen    func(emit func(int64, *packet.Packet) error) error
}

func (s scripted) Tuples() []packet.FiveTuple { return s.tuples }
func (s scripted) Generate(emit func(int64, *packet.Packet) error) error {
	return s.gen(emit)
}

// lbFlows builds n distinct client→VIP tuples.
func lbFlows(n int) []packet.FiveTuple {
	out := make([]packet.FiveTuple, n)
	for i := range out {
		out[i] = packet.FiveTuple{
			SrcIP:   packet.MakeIPv4Addr(172, 16, byte(i/250), byte(1+i%250)),
			DstIP:   packet.MakeIPv4Addr(10, 0, 2, 2),
			SrcPort: uint16(5000 + i),
			DstPort: 80,
			Proto:   packet.IPProtocolTCP,
		}
	}
	return out
}

// roundRobin interleaves perFlow packets of every flow, tagging each
// packet's TCP sequence number with its per-flow index, with an optional
// FIN at index finAt (teardown exercises deletes mid-stream).
func roundRobin(flows []packet.FiveTuple, perFlow, finAt int) scripted {
	return scripted{
		tuples: flows,
		gen: func(emit func(int64, *packet.Packet) error) error {
			tNs := int64(0)
			for i := 0; i < perFlow; i++ {
				for _, tup := range flows {
					flags := packet.TCPFlagACK
					if i == finAt {
						flags = packet.TCPFlagFIN
					}
					pkt := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
						packet.TCPOptions{Flags: flags, Seq: uint32(i)})
					if err := emit(tNs, pkt); err != nil {
						return err
					}
					tNs += 1000
				}
			}
			return nil
		},
	}
}

// TestPerFlowOrderingEightWorkers is the tentpole property test: at 8
// workers, every flow's deliveries must appear in arrival order (per-flow
// FIFO + run-to-completion), even though flows interleave freely across
// worker goroutines. Run under -race in CI.
func TestPerFlowOrderingEightWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("1600-packet concurrency property; runs in full mode and CI (-race)")
	}
	_, res := compileMB(t, "l4lb")
	const nFlows, perFlow = 32, 50

	var mu sync.Mutex
	seqs := map[packet.FiveTuple][]uint32{}
	workersSeen := map[int]bool{}
	eng, err := New(Config{
		Workers: 8,
		Res:     res,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		OnDelivery: func(d Delivery) {
			mu.Lock()
			defer mu.Unlock()
			if d.Delivered {
				seqs[d.Flow] = append(seqs[d.Flow], d.Pkt.TCP.Seq)
				workersSeen[d.Worker] = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), roundRobin(lbFlows(nFlows), perFlow, -1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered != nFlows*perFlow {
		t.Fatalf("delivered %d of %d", rep.Stats.Delivered, nFlows*perFlow)
	}
	if rep.Stats.FastPath == 0 || rep.Stats.SlowPath == 0 {
		t.Fatalf("want both paths exercised: fast=%d slow=%d", rep.Stats.FastPath, rep.Stats.SlowPath)
	}
	if len(seqs) != nFlows {
		t.Fatalf("saw %d flows, want %d", len(seqs), nFlows)
	}
	for tup, got := range seqs {
		if len(got) != perFlow {
			t.Fatalf("flow %v: %d deliveries, want %d", tup, len(got), perFlow)
		}
		for i, s := range got {
			if s != uint32(i) {
				t.Fatalf("flow %v: delivery %d carries seq %d — per-flow order violated", tup, i, s)
			}
		}
	}
	if len(workersSeen) < 2 {
		t.Errorf("flows landed on %d worker(s); dispatcher did not spread load", len(workersSeen))
	}
	if rep.Workers != 8 || len(rep.PerWorker) != 8 {
		t.Errorf("report workers = %d/%d, want 8", rep.Workers, len(rep.PerWorker))
	}
}

// flowFate is one delivery's observable outcome.
type flowFate struct {
	delivered, mbDropped, queueDropped bool
	dstIP                              packet.IPv4Addr
	seq                                uint32
}

func runLB(t *testing.T, workers int, wl Workload) (map[packet.FiveTuple][]flowFate, *Report) {
	t.Helper()
	_, res := compileMB(t, "l4lb")
	var mu sync.Mutex
	fates := map[packet.FiveTuple][]flowFate{}
	eng, err := New(Config{
		Workers: workers,
		Res:     res,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		OnDelivery: func(d Delivery) {
			mu.Lock()
			defer mu.Unlock()
			fates[d.Flow] = append(fates[d.Flow], flowFate{
				delivered: d.Delivered, mbDropped: d.MBDropped, queueDropped: d.QueueDropped,
				dstIP: d.Pkt.IP.DstIP, seq: d.Pkt.TCP.Seq,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), wl)
	if err != nil {
		t.Fatal(err)
	}
	return fates, rep
}

// TestShardEquivalenceOneVsEightWorkers: sharding is an implementation
// detail — per-flow fates (actions and header rewrites), including across
// a mid-stream FIN teardown and re-insert, must match a 1-worker run
// exactly. This is the run-to-completion equivalence claim.
func TestShardEquivalenceOneVsEightWorkers(t *testing.T) {
	flows := lbFlows(24)
	one, _ := runLB(t, 1, roundRobin(flows, 30, 20))
	eight, _ := runLB(t, 8, roundRobin(flows, 30, 20))
	if len(one) != len(eight) {
		t.Fatalf("flow counts differ: %d vs %d", len(one), len(eight))
	}
	for tup, a := range one {
		b, ok := eight[tup]
		if !ok {
			t.Fatalf("flow %v missing at 8 workers", tup)
		}
		if len(a) != len(b) {
			t.Fatalf("flow %v: %d vs %d fates", tup, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("flow %v packet %d: 1-worker %+v vs 8-worker %+v", tup, i, a[i], b[i])
			}
		}
	}
}

// TestRunContextCancellation: canceling the context mid-stream aborts the
// run promptly, drains without deadlock, and reports the cancellation.
func TestRunContextCancellation(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	var mu sync.Mutex
	eng, err := New(Config{
		Workers: 4,
		Res:     res,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
		OnDelivery: func(d Delivery) {
			mu.Lock()
			n++
			if n == 100 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Effectively unbounded workload: only cancellation ends it.
	wl := scripted{gen: func(emit func(int64, *packet.Packet) error) error {
		flows := lbFlows(16)
		for i := 0; ; i++ {
			tup := flows[i%len(flows)]
			pkt := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
				packet.TCPOptions{Flags: packet.TCPFlagACK})
			if err := emit(int64(i)*1000, pkt); err != nil {
				return err
			}
		}
	}}
	_, err = eng.Run(ctx, wl)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestEngineSoftwareMode runs the unpartitioned baseline across shards.
func TestEngineSoftwareMode(t *testing.T) {
	prog, _ := compileMB(t, "l4lb")
	eng, err := New(Config{
		Mode:    2, // netsim.Software without importing it here
		Workers: 4,
		Prog:    prog,
		Setup:   func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), roundRobin(lbFlows(8), 20, -1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered != 8*20 {
		t.Fatalf("delivered %d, want %d", rep.Stats.Delivered, 8*20)
	}
	if rep.Stats.SlowPath != rep.Stats.Injected {
		t.Errorf("software baseline must serve every packet on the server: slow=%d injected=%d",
			rep.Stats.SlowPath, rep.Stats.Injected)
	}
	if rep.Switch != nil {
		t.Error("software mode reported switch stats")
	}
}

// natFlows builds n internal→external tuples (mazunat translates them).
func natFlows(n int) []packet.FiveTuple {
	out := make([]packet.FiveTuple, n)
	for i := range out {
		out[i] = packet.FiveTuple{
			SrcIP:   packet.MakeIPv4Addr(10, 0, byte(i/200), byte(1+i%200)),
			DstIP:   packet.MakeIPv4Addr(93, 184, 216, 34),
			SrcPort: uint16(30000 + i),
			DstPort: 80,
			Proto:   packet.IPProtocolTCP,
		}
	}
	return out
}

// TestCtlChannelDrainsEveryBatch: with a tiny control queue and a NAT
// insert per flow, backpressure must not lose batches — by the time Run
// returns, the drainer has applied every staged entry to the switch.
// Multiple packets per flow additionally pin the per-worker output
// commit: a flow's later packets must see its own write-back applied, so
// each flow allocates exactly one external port (no slow-path churn, no
// nat_rev bloat).
func TestCtlChannelDrainsEveryBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("backpressure property over 200 flows; runs in full mode and CI (-race)")
	}
	_, res := compileMB(t, "mazunat")
	const nFlows = 200
	eng, err := New(Config{
		Workers:  4,
		Res:      res,
		CtlQueue: 1,
		Setup: func(shard int, st *ir.State) {
			middleboxes.ConfigureShard("mazunat", shard, 4, st)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background(), roundRobin(natFlows(nFlows), 5, -1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered != 5*nFlows {
		t.Fatalf("delivered %d, want %d", rep.Stats.Delivered, 5*nFlows)
	}
	if rep.Stats.CtlBatches == 0 || rep.Stats.CtlOps < 2*nFlows {
		t.Fatalf("control plane did not run: batches=%d ops=%d", rep.Stats.CtlBatches, rep.Stats.CtlOps)
	}
	sw, ok := eng.SwitchStats()
	if !ok {
		t.Fatal("no switch stats")
	}
	if got := sw.TableEntries["nat_fwd"]; got != nFlows {
		t.Fatalf("nat_fwd holds %d entries after drain, want %d", got, nFlows)
	}
	if got := sw.TableEntries["nat_rev"]; got != nFlows {
		t.Fatalf("nat_rev holds %d entries, want %d — a flow re-allocated a port despite output commit", got, nFlows)
	}
}

// TestMazunatShardedPortAllocation: ConfigureShard partitions the NAT's
// external-port space, so concurrent shards must never hand two flows the
// same external port, and every port must come from its shard's slice.
func TestMazunatShardedPortAllocation(t *testing.T) {
	_, res := compileMB(t, "mazunat")
	const workers, nFlows = 4, 64
	var mu sync.Mutex
	portOwner := map[uint16]packet.FiveTuple{}
	type alloc struct {
		port   uint16
		worker int
	}
	allocs := map[packet.FiveTuple]alloc{}
	eng, err := New(Config{
		Workers: workers,
		Res:     res,
		Setup: func(shard int, st *ir.State) {
			middleboxes.ConfigureShard("mazunat", shard, workers, st)
		},
		OnDelivery: func(d Delivery) {
			if !d.Delivered {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if _, seen := allocs[d.Flow]; !seen {
				allocs[d.Flow] = alloc{port: d.Pkt.TCP.SrcPort, worker: d.Worker}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), roundRobin(natFlows(nFlows), 3, -1)); err != nil {
		t.Fatal(err)
	}
	if len(allocs) != nFlows {
		t.Fatalf("allocated for %d flows, want %d", len(allocs), nFlows)
	}
	span := uint16(65536 / workers)
	for tup, a := range allocs {
		if prev, dup := portOwner[a.port]; dup {
			t.Fatalf("external port %d allocated to both %v and %v", a.port, prev, tup)
		}
		portOwner[a.port] = tup
		lo := uint16(a.worker) * span
		if a.port < lo || (a.worker < workers-1 && a.port >= lo+span) {
			t.Errorf("flow %v: port %d outside shard %d's range [%d,%d)", tup, a.port, a.worker, lo, lo+span)
		}
	}
}

// TestRunIsOneShot: a second Run on the same engine must be rejected —
// state carries the first run's traffic history.
func TestRunIsOneShot(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	eng, err := New(Config{Res: res, Setup: func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), roundRobin(lbFlows(2), 2, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), roundRobin(lbFlows(2), 2, -1)); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestOutOfOrderInjectionRejected mirrors the testbed's contract.
func TestOutOfOrderInjectionRejected(t *testing.T) {
	_, res := compileMB(t, "l4lb")
	eng, err := New(Config{Res: res, Setup: func(_ int, st *ir.State) { middleboxes.ConfigureState("l4lb", st) }})
	if err != nil {
		t.Fatal(err)
	}
	tup := lbFlows(1)[0]
	wl := scripted{gen: func(emit func(int64, *packet.Packet) error) error {
		p1 := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
		if err := emit(1000, p1); err != nil {
			return err
		}
		p2 := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
		return emit(500, p2)
	}}
	if _, err := eng.Run(context.Background(), wl); err == nil {
		t.Fatal("out-of-order injection accepted")
	} else if want := "out-of-order"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

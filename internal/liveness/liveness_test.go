package liveness

import (
	"testing"

	"gallium/internal/ir"
)

func TestStraightLineLiveness(t *testing.T) {
	// x = const; y = const; z = x + y; storehdr = z; send
	b := ir.NewBuilder("f")
	x := b.Const("x", ir.U32, 1)
	y := b.Const("y", ir.U32, 2)
	z := b.BinOp("z", ir.Add, x, y)
	b.StoreHeader("ip.ttl", z)
	b.Send()
	fn := b.Fn()
	fn.Finalize()

	info := Analyze(fn)
	if len(info.LiveIn[0]) != 0 {
		t.Errorf("entry live-in = %v, want empty", info.LiveIn[0])
	}
	// Max live: x and y simultaneously (64 bits), then just z (32).
	if got := MaxLiveBits(fn); got != 64 {
		t.Errorf("MaxLiveBits = %d, want 64", got)
	}
}

func TestBranchLiveness(t *testing.T) {
	// c live across the branch; v live only on one arm.
	b := ir.NewBuilder("f")
	c := b.Const("c", ir.Bool, 1)
	v := b.Const("v", ir.U32, 7)
	then := b.NewBlock()
	els := b.NewBlock()
	b.Branch(c, then, els)
	b.SetBlock(then)
	b.StoreHeader("ip.ttl", v)
	b.Send()
	b.SetBlock(els)
	b.Drop()
	fn := b.Fn()
	fn.Finalize()

	info := Analyze(fn)
	if !info.LiveIn[1][v] {
		t.Error("v must be live into then-block")
	}
	if info.LiveIn[2][v] {
		t.Error("v must not be live into else-block")
	}
	if info.LiveOut[0][c] {
		t.Error("c is consumed by the branch, not live out past it")
	}
}

func TestLoopLiveness(t *testing.T) {
	// Loop-carried: i is live around the back edge.
	b := ir.NewBuilder("f")
	g := &ir.Global{Name: "n", Kind: ir.KindScalar, ValTypes: []ir.Type{ir.U32}}
	i0 := b.Const("i0", ir.U32, 0)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	b.Jump(head)
	b.SetBlock(head)
	n := b.GlobalLoad("n", g)
	c := b.BinOp("c", ir.Lt, i0, n)
	b.Branch(c, body, exit)
	b.SetBlock(body)
	b.Jump(head)
	b.SetBlock(exit)
	b.Send()
	fn := b.Fn()
	fn.Finalize()

	info := Analyze(fn)
	// i0 is used in the loop head, which is re-entered from the body: it
	// must be live out of the body and into the head.
	if !info.LiveIn[1][i0] || !info.LiveIn[2][i0] {
		t.Errorf("i0 must be live through the loop: head=%v body=%v", info.LiveIn[1], info.LiveIn[2])
	}
}

func TestDeadRegisterReuse(t *testing.T) {
	// a dies before b is created: they never coexist, so max live is one
	// 32-bit register at a time (after the store consumes a).
	b := ir.NewBuilder("f")
	a := b.Const("a", ir.U32, 1)
	b.StoreHeader("ip.saddr", a)
	v := b.Const("v", ir.U32, 2)
	b.StoreHeader("ip.daddr", v)
	b.Send()
	fn := b.Fn()
	fn.Finalize()
	if got := MaxLiveBits(fn); got != 32 {
		t.Errorf("MaxLiveBits = %d, want 32 (slots reused)", got)
	}
}

func TestUsedAndDefinedRegs(t *testing.T) {
	b := ir.NewBuilder("f")
	x := b.Const("x", ir.U32, 1)
	y := b.BinOp("y", ir.Add, x, x)
	then := b.NewBlock()
	els := b.NewBlock()
	c := b.BinOp("c", ir.Eq, y, x)
	b.Branch(c, then, els)
	b.SetBlock(then)
	b.Send()
	b.SetBlock(els)
	b.Drop()
	fn := b.Fn()
	fn.Finalize()

	used := UsedRegs(fn)
	if !used[x] || !used[y] || !used[c] {
		t.Errorf("used = %v", used)
	}
	def := DefinedRegs(fn)
	if !def[x] || !def[y] || !def[c] {
		t.Errorf("defined = %v", def)
	}
}

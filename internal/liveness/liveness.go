// Package liveness implements register liveness analysis over IR
// functions. The partitioner uses it twice: to size the per-packet
// scratchpad metadata the switch partitions need (resource Constraint 4,
// §4.2.2 — Gallium reuses metadata slots of dead temporaries, which is
// exactly "maximum live bits at any program point"), and to decide which
// variables must transfer across partition boundaries (§4.3.2).
package liveness

import "gallium/internal/ir"

// Info holds the results of a liveness analysis over one function.
type Info struct {
	Fn *ir.Function
	// LiveIn and LiveOut are block-level live register sets.
	LiveIn, LiveOut []map[ir.Reg]bool
}

// uses returns the registers an instruction reads.
func uses(in *ir.Instr) []ir.Reg { return in.Args }

// defs returns the registers an instruction writes.
func defs(in *ir.Instr) []ir.Reg { return in.Dst }

// Analyze runs the classic backward dataflow to a fixpoint.
func Analyze(fn *ir.Function) *Info {
	n := len(fn.Blocks)
	info := &Info{Fn: fn, LiveIn: make([]map[ir.Reg]bool, n), LiveOut: make([]map[ir.Reg]bool, n)}
	for i := 0; i < n; i++ {
		info.LiveIn[i] = map[ir.Reg]bool{}
		info.LiveOut[i] = map[ir.Reg]bool{}
	}
	succs := make([][]int, n)
	for _, b := range fn.Blocks {
		switch b.Term.Kind {
		case ir.Jump:
			succs[b.ID] = []int{b.Term.Then}
		case ir.Branch:
			succs[b.ID] = []int{b.Term.Then, b.Term.Else}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := fn.Blocks[i]
			out := map[ir.Reg]bool{}
			for _, s := range succs[i] {
				for r := range info.LiveIn[s] {
					out[r] = true
				}
			}
			in := cloneRegSet(out)
			// Walk the block backward: terminator first, then instrs.
			for _, r := range uses(&b.Term) {
				in[r] = true
			}
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				for _, r := range defs(&b.Instrs[j]) {
					delete(in, r)
				}
				for _, r := range uses(&b.Instrs[j]) {
					in[r] = true
				}
			}
			if !regSetsEqual(out, info.LiveOut[i]) || !regSetsEqual(in, info.LiveIn[i]) {
				info.LiveOut[i] = out
				info.LiveIn[i] = in
				changed = true
			}
		}
	}
	return info
}

// MaxLiveBits returns the maximum, over all program points, of the total
// width of simultaneously live registers — the scratchpad metadata a
// switch partition needs after slot reuse.
func MaxLiveBits(fn *ir.Function) int {
	info := Analyze(fn)
	max := 0
	for _, b := range fn.Blocks {
		live := cloneRegSet(info.LiveOut[b.ID])
		// Points inside the block, walked backward.
		consider := func() {
			bits := 0
			for r := range live {
				bits += fn.RegType(r).Bits()
			}
			if bits > max {
				max = bits
			}
		}
		for _, r := range uses(&b.Term) {
			live[r] = true
		}
		consider()
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			for _, r := range defs(&b.Instrs[j]) {
				delete(live, r)
			}
			for _, r := range uses(&b.Instrs[j]) {
				live[r] = true
			}
			consider()
		}
	}
	return max
}

// UsedRegs returns every register the function reads (instruction and
// terminator operands).
func UsedRegs(fn *ir.Function) map[ir.Reg]bool {
	out := map[ir.Reg]bool{}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			for _, r := range uses(&b.Instrs[i]) {
				out[r] = true
			}
		}
		for _, r := range uses(&b.Term) {
			out[r] = true
		}
	}
	return out
}

// DefinedRegs returns every register the function writes.
func DefinedRegs(fn *ir.Function) map[ir.Reg]bool {
	out := map[ir.Reg]bool{}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			for _, r := range defs(&b.Instrs[i]) {
				out[r] = true
			}
		}
	}
	return out
}

func cloneRegSet(s map[ir.Reg]bool) map[ir.Reg]bool {
	c := make(map[ir.Reg]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func regSetsEqual(a, b map[ir.Reg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

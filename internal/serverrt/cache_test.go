package serverrt

import (
	"math/rand"
	"testing"

	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
)

// deployCached builds a deployment where the named tables run as §7
// switch caches of the given capacity.
func deployCached(t *testing.T, name string, caches map[string]int) (*ir.Program, *Deployment) {
	t.Helper()
	spec, err := middleboxes.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := partition.DefaultConstraints()
	c.CacheEntries = caches
	res, err := partition.Partition(prog, c)
	if err != nil {
		t.Fatal(err)
	}
	return prog, NewDeployment(res)
}

// TestCacheModeEquivalence drives far more connections than the cache
// holds through the LB and NAT: behaviour must still match the reference
// exactly — correctness never depends on what happens to be cached.
func TestCacheModeEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		caches map[string]int
	}{
		{"minilb", map[string]int{"conn": 16}},
		{"l4lb", map[string]int{"conns": 16}},
		{"mazunat", map[string]int{"nat_fwd": 8, "nat_rev": 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, d := deployCached(t, tc.name, tc.caches)
			ref := NewSoftware(prog)
			setup := func(st *ir.State) { middleboxes.ConfigureState(tc.name, st) }
			setup(ref.State)
			if err := d.Configure(setup); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(11))
			punts := 0
			for i := 0; i < 4000; i++ {
				// ~200 distinct connections against 8-16 cache slots.
				src := packet.MakeIPv4Addr(10, 0, byte(rng.Intn(5)), byte(1+rng.Intn(40)))
				pktRef := packet.BuildTCP(src, packet.MakeIPv4Addr(99, 9, 9, 9), uint16(5000+rng.Intn(40)), 80,
					packet.TCPOptions{Flags: packet.TCPFlagACK})
				if rng.Intn(10) == 0 {
					pktRef.TCP.Flags = packet.TCPFlagSYN
				}
				pktDep := pktRef.Clone()

				rRef, err := ref.Process(pktRef)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := d.Process(pktDep)
				if err != nil {
					t.Fatalf("pkt %d: %v", i, err)
				}
				if rRef.Action != tr.Action {
					t.Fatalf("pkt %d: action ref=%v dep=%v", i, rRef.Action, tr.Action)
				}
				if tr.Action == ir.ActionSent {
					for _, f := range []string{"ip.saddr", "ip.daddr", "l4.sport", "l4.dport"} {
						a, _ := pktRef.GetField(f)
						b, _ := pktDep.GetField(f)
						if a != b {
							t.Fatalf("pkt %d: %s ref=%d dep=%d", i, f, a, b)
						}
					}
				}
				if !tr.FastPath && tr.SrvSteps > 0 {
					punts++
				}
			}
			if !ref.State.Equal(d.Server.State) {
				t.Fatal("server state diverged from reference")
			}
			// Cache stayed within capacity.
			st := d.Switch.Stats()
			for tbl, cap := range tc.caches {
				if st.TableEntries[tbl] > cap {
					t.Errorf("cache %s holds %d entries, capacity %d", tbl, st.TableEntries[tbl], cap)
				}
			}
			if st.Evictions == 0 {
				t.Error("no evictions despite cache pressure")
			}
			if st.Punts == 0 {
				t.Error("no punts despite cache misses")
			}
			t.Logf("%s: %d punts, %d evictions, fast path %d/%d",
				tc.name, st.Punts, st.Evictions, st.FastPath, st.PrePackets)
		})
	}
}

// TestCachePuntLeavesPacketUntouched: a cache miss must punt the original
// packet — no pipeline effects may leak (P4 predicates actions on the punt
// flag).
func TestCachePuntLeavesPacketUntouched(t *testing.T) {
	_, d := deployCached(t, "minilb", map[string]int{"conn": 4})
	if err := d.Configure(func(st *ir.State) { middleboxes.ConfigureState("minilb", st) }); err != nil {
		t.Fatal(err)
	}
	pkt := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 7, 80, packet.TCPOptions{})
	pre, err := d.Switch.ProcessPre(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Punt {
		t.Fatal("first packet should miss the empty cache and punt")
	}
	if pkt.HasGallium {
		t.Error("punted packet must not carry a gallium header")
	}
	if pkt.IP.DstIP != packet.MakeIPv4Addr(9, 9, 9, 9) {
		t.Error("punted packet was modified by the discarded pipeline pass")
	}
}

// TestCacheFillEnablesFastPath: after a punt warms the cache, the same
// connection hits on the switch.
func TestCacheFillEnablesFastPath(t *testing.T) {
	_, d := deployCached(t, "minilb", map[string]int{"conn": 4})
	if err := d.Configure(func(st *ir.State) { middleboxes.ConfigureState("minilb", st) }); err != nil {
		t.Fatal(err)
	}
	p1 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 7, 80, packet.TCPOptions{})
	tr1, err := d.Process(p1)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.FastPath {
		t.Fatal("first packet cannot be fast")
	}
	// The fill must not have stalled the packet: cache fills are not
	// output-commit events (a racing packet just punts).
	if tr1.SyncOps != 0 {
		t.Errorf("cache fill stalled the packet (%d sync ops)", tr1.SyncOps)
	}
	p2 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 7, 80, packet.TCPOptions{})
	tr2, err := d.Process(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.FastPath {
		t.Fatal("second packet should hit the warmed cache")
	}
	if p2.IP.DstIP != p1.IP.DstIP {
		t.Errorf("backend changed across cache fill: %v vs %v", p2.IP.DstIP, p1.IP.DstIP)
	}
}

// TestCacheInvalidationOnRemove: l4lb's FIN path removes the connection;
// the switch cache must be invalidated synchronously so later packets of
// that tuple punt (and get a fresh authoritative answer).
func TestCacheInvalidationOnRemove(t *testing.T) {
	_, d := deployCached(t, "l4lb", map[string]int{"conns": 8})
	if err := d.Configure(func(st *ir.State) { middleboxes.ConfigureState("l4lb", st) }); err != nil {
		t.Fatal(err)
	}
	client := packet.MakeIPv4Addr(172, 16, 0, 3)
	vip := packet.MakeIPv4Addr(10, 0, 2, 2)
	mk := func(flags uint8) *packet.Packet {
		return packet.BuildTCP(client, vip, 6000, 80, packet.TCPOptions{Flags: flags})
	}
	if _, err := d.Process(mk(packet.TCPFlagSYN)); err != nil { // punt + fill
		t.Fatal(err)
	}
	tr, err := d.Process(mk(packet.TCPFlagACK))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.FastPath {
		t.Fatal("data packet should hit the cache")
	}
	// FIN hits the cache, goes to the server partition, removes the entry;
	// the removal is a synchronous update.
	trFin, err := d.Process(mk(packet.TCPFlagFIN | packet.TCPFlagACK))
	if err != nil {
		t.Fatal(err)
	}
	if trFin.SyncOps == 0 {
		t.Error("connection removal did not synchronize")
	}
	tbl, _ := d.Switch.Table("conns")
	if tbl.Len() != 0 {
		t.Errorf("cache still holds %d entries after FIN", tbl.Len())
	}
	// Next packet of the tuple punts (authoritative miss → new entry).
	pre, err := d.Switch.ProcessPre(mk(packet.TCPFlagACK))
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Punt {
		t.Error("post-FIN packet should punt on the invalidated cache")
	}
}

// TestCacheHitRateGrowsWithCapacity: the §7 trade-off — more switch
// memory, higher fast-path coverage.
func TestCacheHitRateGrowsWithCapacity(t *testing.T) {
	run := func(capEntries int) float64 {
		_, d := deployCached(t, "minilb", map[string]int{"conn": capEntries})
		if err := d.Configure(func(st *ir.State) { middleboxes.ConfigureState("minilb", st) }); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		fast := 0
		total := 6000
		for i := 0; i < total; i++ {
			// Zipf-ish reuse: a small hot set plus a cold tail.
			var src packet.IPv4Addr
			if rng.Intn(4) > 0 {
				src = packet.MakeIPv4Addr(10, 0, 0, byte(1+rng.Intn(8))) // hot
			} else {
				src = packet.MakeIPv4Addr(10, 0, 1, byte(1+rng.Intn(100))) // cold
			}
			p := packet.BuildTCP(src, packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{})
			tr, err := d.Process(p)
			if err != nil {
				t.Fatal(err)
			}
			if tr.FastPath {
				fast++
			}
		}
		return float64(fast) / float64(total)
	}
	small := run(4)
	big := run(64)
	if big <= small {
		t.Errorf("hit rate did not grow with cache size: %.2f (4 entries) vs %.2f (64)", small, big)
	}
	t.Logf("fast-path rate: %.1f%% with 4 entries, %.1f%% with 64", 100*small, 100*big)
}

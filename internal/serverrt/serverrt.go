// Package serverrt implements the middlebox server: it executes the
// non-offloaded partition (the paper's generated DPDK application) against
// the authoritative middlebox state, records every update touching
// replicated state, and hands those updates to the runtime so they can be
// pushed through the switch's write-back control plane while the packet is
// held by output commit (§4.3.3). It also provides the software baseline —
// the whole input program on the server — which plays the paper's
// FastClick comparison.
package serverrt

import (
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/switchsim"
)

// Result describes one packet's processing on the server.
type Result struct {
	Action ir.Action
	// Steps is the number of executed statements (the cycle model scales
	// from it).
	Steps int
	// Updates lists replicated-state mutations that must be synchronized
	// to the switch before the packet is released (output commit).
	Updates []switchsim.Update
}

// Server runs the non-offloaded partition. A Server is NOT safe for
// concurrent use — the engine runs one per worker shard — which lets it
// keep a reusable execution scratchpad (transfer slots, register file,
// recorder) so a steady-state packet that records no updates allocates
// nothing.
type Server struct {
	Res   *partition.Result
	State *ir.State

	replicated map[string]bool
	// cached marks tables running in §7 cache mode: authoritative hits
	// are republished to the switch as read-through fills.
	cached map[string]bool

	// Reusable per-packet scratch (single-goroutine use).
	rec  recorder
	env  ir.Env
	xfer []uint64
	// xferA and xferB pair each transfer variable's scratchpad slot with
	// its precomputed header position (resolved once at construction).
	xferA, xferB []xferField

	reg *obs.Registry
	c   serverCounters
	// fills tracks per-cached-table read-through fills.
	fills map[string]*obs.Counter
}

// xferField pairs a transfer variable's scratchpad slot with its
// precomputed wire position.
type xferField struct {
	slot int
	spec packet.FieldSpec
}

func compileXferFields(vars []partition.TransferVar, f *packet.HeaderFormat) []xferField {
	out := make([]xferField, 0, len(vars))
	for _, v := range vars {
		spec, _ := f.Spec(v.Name)
		out = append(out, xferField{slot: v.Slot, spec: spec})
	}
	return out
}

// serverCounters are the server-wide activity counters.
type serverCounters struct {
	packets, steps         *obs.Counter // slow-path partition executions
	fullPackets, fullSteps *obs.Counter // §7 full-program re-executions
	updates                *obs.Counter // replicated-state updates recorded
	cacheLookups           *obs.Counter // authoritative lookups on cached tables
	cacheHits, cacheMisses *obs.Counter
	cacheFills             *obs.Counter
}

// Instrument registers the server's metrics with reg and starts recording
// into them. Passing nil is a no-op; instrumentation cannot be removed.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.c = serverCounters{
		packets:      reg.Counter("server.packets"),
		steps:        reg.Counter("server.steps"),
		fullPackets:  reg.Counter("server.full.packets"),
		fullSteps:    reg.Counter("server.full.steps"),
		updates:      reg.Counter("server.updates"),
		cacheLookups: reg.Counter("server.cache.lookups"),
		cacheHits:    reg.Counter("server.cache.hits"),
		cacheMisses:  reg.Counter("server.cache.misses"),
		cacheFills:   reg.Counter("server.cache.fills"),
	}
	s.fills = make(map[string]*obs.Counter, len(s.cached))
	for name := range s.cached {
		s.fills[name] = reg.Counter("server.cache." + name + ".fills")
	}
}

// New builds a server for a partitioned middlebox with fresh state.
func New(res *partition.Result) *Server {
	s := &Server{
		Res:        res,
		State:      ir.NewState(res.Prog),
		replicated: map[string]bool{},
		cached:     map[string]bool{},
	}
	for _, gn := range res.OffloadedGlobals {
		s.replicated[gn] = true
		g := res.Prog.Global(gn)
		if g.Kind == ir.KindMap {
			if cap := res.Cons.CacheFor(gn); cap > 0 && cap < g.MaxEntries {
				s.cached[gn] = true
			}
		}
	}
	s.rec.srv = s
	s.xfer = make([]uint64, res.NumXferSlots)
	s.xferA = compileXferFields(res.TransferA, res.FormatA)
	s.xferB = compileXferFields(res.TransferB, res.FormatB)
	return s
}

// recorder applies state mutations locally and records those that touch
// replicated state.
type recorder struct {
	srv     *Server
	updates []switchsim.Update
}

func (r *recorder) MapFind(name string, key ir.MapKey) ([]uint64, bool) {
	vals, ok := r.srv.State.MapFind(name, key)
	if r.srv.reg != nil && r.srv.cached[name] {
		r.srv.c.cacheLookups.Inc()
		if ok {
			r.srv.c.cacheHits.Inc()
		} else {
			r.srv.c.cacheMisses.Inc()
		}
	}
	if ok && r.srv.cached[name] {
		// Read-through fill (§7 cache mode): republish the entry so the
		// switch cache can serve the next packets of this flow.
		r.updates = append(r.updates, switchsim.Update{
			Table: name, Key: key, Vals: append([]uint64(nil), vals...), ReadFill: true,
		})
		if r.srv.reg != nil {
			r.srv.c.cacheFills.Inc()
			r.srv.fills[name].Inc()
		}
	}
	return vals, ok
}

func (r *recorder) MapInsert(name string, key ir.MapKey, vals []uint64) error {
	if r.srv.replicated[name] {
		r.updates = append(r.updates, switchsim.Update{Table: name, Key: key, Vals: append([]uint64(nil), vals...)})
	}
	return r.srv.State.MapInsert(name, key, vals)
}

func (r *recorder) MapRemove(name string, key ir.MapKey) error {
	if r.srv.replicated[name] {
		r.updates = append(r.updates, switchsim.Update{Table: name, Key: key, Delete: true})
	}
	return r.srv.State.MapRemove(name, key)
}

func (r *recorder) VecGet(name string, idx uint64) (uint64, error) {
	return r.srv.State.VecGet(name, idx)
}

func (r *recorder) VecLen(name string) uint64 { return r.srv.State.VecLen(name) }

func (r *recorder) GlobalLoad(name string) uint64 { return r.srv.State.GlobalLoad(name) }

func (r *recorder) LpmFind(name string, key uint64) ([]uint64, bool) {
	return r.srv.State.LpmFind(name, key)
}

func (r *recorder) GlobalStore(name string, v uint64) error {
	if r.srv.replicated[name] {
		r.updates = append(r.updates, switchsim.Update{Register: name, RegVal: v})
	}
	return r.srv.State.GlobalStore(name, v)
}

// SetClock sets the virtual time and traffic class stamped onto
// lifecycle-armed flow-table entries by subsequent Process calls.
func (s *Server) SetClock(nowNs int64, class uint8) {
	s.State.NowNs = nowNs
	s.State.Class = class
}

// Process runs the non-offloaded partition over a slow-path packet. The
// packet must carry the gallium_a header (attached by the switch); on
// ActionNext it leaves carrying gallium_b for the post-processing pass.
func (s *Server) Process(pkt *packet.Packet) (Result, error) {
	if !pkt.HasGallium {
		return Result{}, fmt.Errorf("serverrt: slow-path packet lacks gallium_a header")
	}
	xfer := s.scratchXfer()
	for _, f := range s.xferA {
		val, err := s.Res.FormatA.GetAt(pkt.GalData, f.spec)
		if err != nil {
			return Result{}, err
		}
		if f.slot <= 0 {
			return Result{}, fmt.Errorf("serverrt: transfer field without compiled slot")
		}
		xfer[f.slot-1] = val
	}
	pkt.StripGallium()

	env := s.scratchEnv(pkt, xfer)
	r, err := ir.ExecFunc(s.Res.Prog, s.Res.SrvFn, env)
	if err != nil {
		return Result{}, fmt.Errorf("serverrt: %w", err)
	}
	if r.Action == ir.ActionNext {
		pkt.AttachGallium(s.Res.FormatB)
		for _, f := range s.xferB {
			if f.slot <= 0 {
				return Result{}, fmt.Errorf("serverrt: transfer field without compiled slot")
			}
			if err := s.Res.FormatB.SetAt(pkt.GalData, f.spec, xfer[f.slot-1]); err != nil {
				return Result{}, err
			}
		}
	}
	if s.reg != nil {
		s.c.packets.Inc()
		s.c.steps.Add(uint64(r.Steps))
		s.c.updates.Add(uint64(len(s.rec.updates)))
	}
	return Result{Action: r.Action, Steps: r.Steps, Updates: s.takeUpdates()}, nil
}

// scratchXfer returns the reusable transfer scratchpad, zeroed.
func (s *Server) scratchXfer() []uint64 {
	clear(s.xfer)
	return s.xfer
}

// scratchEnv wires the reusable environment for one execution. The env's
// register file (Env.Regs) is retained across packets and reused by the
// interpreter.
func (s *Server) scratchEnv(pkt *packet.Packet, xfer []uint64) *ir.Env {
	s.env.State = s.State
	s.env.Access = &s.rec
	s.env.Pkt = pkt
	s.env.Xfer = xfer
	return &s.env
}

// takeUpdates hands ownership of the recorded updates to the caller (they
// may outlive this packet: the engine ships them to an asynchronous
// control-plane drainer, so the slice cannot be reused). The common
// steady-state case records nothing and returns nil without allocating.
func (s *Server) takeUpdates() []switchsim.Update {
	u := s.rec.updates
	s.rec.updates = nil
	return u
}

// ProcessFull runs the COMPLETE middlebox program over a punted packet
// (§7 cache mode: a switch cache miss proves nothing about the
// authoritative state, so the server re-executes everything). The packet
// must not carry a gallium header — the switch punts it unmodified.
func (s *Server) ProcessFull(pkt *packet.Packet) (Result, error) {
	if pkt.HasGallium {
		return Result{}, fmt.Errorf("serverrt: punted packet unexpectedly carries a gallium header")
	}
	env := s.scratchEnv(pkt, nil)
	r, err := ir.ExecFunc(s.Res.Prog, s.Res.Prog.Fn, env)
	if err != nil {
		return Result{}, fmt.Errorf("serverrt: full program: %w", err)
	}
	if s.reg != nil {
		s.c.fullPackets.Inc()
		s.c.fullSteps.Add(uint64(r.Steps))
		s.c.updates.Add(uint64(len(s.rec.updates)))
	}
	return Result{Action: r.Action, Steps: r.Steps, Updates: s.takeUpdates()}, nil
}

// Software is the non-offloaded baseline: the unpartitioned middlebox
// running entirely on the server.
type Software struct {
	Prog  *ir.Program
	State *ir.State

	// env is reused across packets (a Software instance is single-goroutine,
	// one per engine worker).
	env ir.Env

	packets, steps *obs.Counter
}

// NewSoftware builds the baseline with fresh state.
func NewSoftware(p *ir.Program) *Software {
	return &Software{Prog: p, State: ir.NewState(p)}
}

// Instrument registers the baseline's metrics with reg.
func (s *Software) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.packets = reg.Counter("server.packets")
	s.steps = reg.Counter("server.steps")
}

// SetClock sets the virtual time and traffic class stamped onto
// lifecycle-armed flow-table entries by subsequent Process calls.
func (s *Software) SetClock(nowNs int64, class uint8) {
	s.State.NowNs = nowNs
	s.State.Class = class
}

// Process runs the whole input program over one packet.
func (s *Software) Process(pkt *packet.Packet) (Result, error) {
	s.env.State = s.State
	s.env.Pkt = pkt
	r, err := s.Prog.Exec(&s.env)
	if err != nil {
		return Result{}, err
	}
	s.packets.Inc()
	s.steps.Add(uint64(r.Steps))
	return Result{Action: r.Action, Steps: r.Steps}, nil
}

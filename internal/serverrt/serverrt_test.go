package serverrt

import (
	"math/rand"
	"testing"

	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/switchsim"
)

func deploy(t *testing.T, name string) (*ir.Program, *Deployment) {
	t.Helper()
	spec, err := middleboxes.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return prog, NewDeployment(res)
}

// TestDeploymentEquivalenceAllMiddleboxes is the strongest equivalence
// check in the repository: random traffic through the REAL runtime — the
// switch pipeline with its tables, wire-format Gallium headers serialized
// and reparsed on every hop, the server partition, and the write-back
// synchronization protocol — must match the reference interpreter packet
// for packet and end in identical state.
func TestDeploymentEquivalenceAllMiddleboxes(t *testing.T) {
	names := []string{"minilb", "mazunat", "l4lb", "firewall", "proxy", "trojandetector"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, d := deploy(t, name)
			ref := NewSoftware(prog)

			setup := func(st *ir.State) {
				middleboxes.ConfigureState(name, st)
				if name == "proxy" {
					middleboxes.RedirectPort(st, 80)
				}
				if name == "firewall" {
					rng := rand.New(rand.NewSource(3))
					for i := 0; i < 24; i++ {
						middleboxes.AllowFlow(st, randTuple(rng))
					}
				}
			}
			setup(ref.State)
			if err := d.Configure(setup); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 2500; i++ {
				tup := randTuple(rng)
				flags := packet.TCPFlagACK
				switch rng.Intn(8) {
				case 0:
					flags = packet.TCPFlagSYN
				case 1:
					flags = packet.TCPFlagFIN | packet.TCPFlagACK
				}
				payloads := []string{"", "GET /x.zip HTTP/1.1", "data", "SSH-2.0"}
				var pktRef *packet.Packet
				if tup.Proto == packet.IPProtocolUDP {
					pktRef = packet.BuildUDP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, []byte(payloads[rng.Intn(4)]))
				} else {
					pktRef = packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
						packet.TCPOptions{Flags: flags, Payload: []byte(payloads[rng.Intn(4)])})
				}
				pktDep := pktRef.Clone()

				rRef, err := ref.Process(pktRef)
				if err != nil {
					t.Fatalf("pkt %d: reference: %v", i, err)
				}
				tr, err := d.Process(pktDep)
				if err != nil {
					t.Fatalf("pkt %d (%v): deployment: %v", i, tup, err)
				}
				if rRef.Action != tr.Action {
					t.Fatalf("pkt %d (%v): action ref=%v dep=%v", i, tup, rRef.Action, tr.Action)
				}
				if tr.Action == ir.ActionSent {
					for _, f := range []string{"ip.saddr", "ip.daddr", "l4.sport", "l4.dport"} {
						a, _ := pktRef.GetField(f)
						b, _ := pktDep.GetField(f)
						if a != b {
							t.Fatalf("pkt %d (%v): %s ref=%d dep=%d", i, tup, f, a, b)
						}
					}
					if pktDep.HasGallium {
						t.Fatalf("pkt %d: delivered packet still carries a gallium header", i)
					}
				}
			}
			if !ref.State.Equal(d.Server.State) {
				t.Fatal("final server state mismatch with reference")
			}
			// Switch table contents must mirror the server's replicated maps.
			for _, gn := range d.Server.Res.OffloadedGlobals {
				g := d.Server.Res.Prog.Global(gn)
				if g.Kind != ir.KindMap {
					continue
				}
				tbl, _ := d.Switch.Table(gn)
				for k, v := range ref.State.Maps[gn] {
					got, ok := tbl.Lookup(k)
					if !ok || got[0] != v[0] {
						t.Fatalf("switch table %s out of sync at %v", gn, k)
					}
				}
				if tbl.Len() != len(ref.State.Maps[gn]) {
					t.Fatalf("switch table %s has %d entries, server has %d", gn, tbl.Len(), len(ref.State.Maps[gn]))
				}
			}
		})
	}
}

func randTuple(rng *rand.Rand) packet.FiveTuple {
	proto := packet.IPProtocolTCP
	if rng.Intn(5) == 0 {
		proto = packet.IPProtocolUDP
	}
	src := packet.MakeIPv4Addr(10, 0, 0, byte(1+rng.Intn(20)))
	dst := packet.MakeIPv4Addr(93, 184, 0, byte(rng.Intn(20)))
	if rng.Intn(3) == 0 {
		src, dst = dst, packet.MakeIPv4Addr(203, 0, 113, 1)
	}
	ports := []uint16{80, 22, 443, 6667, 8080}
	return packet.FiveTuple{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(1024 + rng.Intn(32)), DstPort: ports[rng.Intn(len(ports))],
		Proto: proto,
	}
}

func TestServerRecordsReplicatedUpdates(t *testing.T) {
	prog, d := deploy(t, "minilb")
	_ = prog
	if err := d.Configure(func(st *ir.State) { middleboxes.ConfigureState("minilb", st) }); err != nil {
		t.Fatal(err)
	}
	pkt := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1, 80, packet.TCPOptions{})
	tr, err := d.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FastPath {
		t.Fatal("first packet of a connection must take the slow path")
	}
	if tr.SyncOps == 0 {
		t.Fatal("server insert produced no sync operations")
	}
	// The switch now has the entry: second packet is fast.
	pkt2 := packet.BuildTCP(packet.MakeIPv4Addr(1, 2, 3, 4), packet.MakeIPv4Addr(9, 9, 9, 9), 1, 80, packet.TCPOptions{})
	tr2, err := d.Process(pkt2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.FastPath {
		t.Fatal("second packet should take the fast path after sync")
	}
	if tr2.SyncOps != 0 {
		t.Error("fast path incurred sync operations")
	}
}

func TestServerRejectsPacketWithoutHeader(t *testing.T) {
	_, d := deploy(t, "minilb")
	pkt := packet.BuildTCP(1, 2, 3, 4, packet.TCPOptions{})
	if _, err := d.Server.Process(pkt); err == nil {
		t.Fatal("server must reject packets without gallium_a")
	}
}

// TestRunToCompletionCausality verifies §3.1 with delayed synchronization:
// a packet causally after p (released only once p's updates are synced)
// observes all of p's updates, while a packet racing the sync observes
// none — and in both cases each update batch is atomic.
func TestRunToCompletionCausality(t *testing.T) {
	spec, _ := middleboxes.Lookup("mazunat")
	prog, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(res)

	// p: first outbound packet of a connection (slow path, allocates a
	// port, updates fwd+rev+counter).
	p := packet.BuildTCP(packet.MakeIPv4Addr(10, 0, 0, 1), packet.MakeIPv4Addr(99, 0, 0, 1), 1234, 80, packet.TCPOptions{Flags: packet.TCPFlagSYN})
	pre, err := d.Switch.ProcessPre(p)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Action != ir.ActionNext {
		t.Fatal("expected slow path")
	}
	rx, err := packet.DecodePacket(p.Serialize(), res.FormatA)
	if err != nil {
		t.Fatal(err)
	}
	srvRes, err := d.Server.Process(rx)
	if err != nil {
		t.Fatal(err)
	}
	// fwd+rev map inserts replicate; the port counter stays server-only
	// (its read-modify-write cannot split across the async write-back).
	if len(srvRes.Updates) != 2 {
		t.Fatalf("expected fwd+rev updates, got %d", len(srvRes.Updates))
	}
	for _, u := range srvRes.Updates {
		if u.Register != "" {
			t.Fatalf("register %q replicated despite server-side RMW", u.Register)
		}
	}
	// Stage but do NOT flip: a concurrent packet q of the same connection
	// must observe NONE of the updates (it re-takes the slow path).
	for _, u := range srvRes.Updates {
		if err := d.Switch.StageWriteback(u); err != nil {
			t.Fatal(err)
		}
	}
	q := packet.BuildTCP(packet.MakeIPv4Addr(10, 0, 0, 1), packet.MakeIPv4Addr(99, 0, 0, 1), 1234, 80, packet.TCPOptions{})
	qPre, err := d.Switch.ProcessPre(q)
	if err != nil {
		t.Fatal(err)
	}
	if qPre.Action != ir.ActionNext {
		t.Fatal("racing packet observed staged (unflipped) state")
	}

	// Flip: p would now be released (output commit). A causally-later
	// packet observes ALL updates: fast path with the same translation.
	d.Switch.FlipVisibility()
	q2 := packet.BuildTCP(packet.MakeIPv4Addr(10, 0, 0, 1), packet.MakeIPv4Addr(99, 0, 0, 1), 1234, 80, packet.TCPOptions{})
	q2Pre, err := d.Switch.ProcessPre(q2)
	if err != nil {
		t.Fatal(err)
	}
	if q2Pre.Action != ir.ActionSent {
		t.Fatalf("causally-later packet action = %v, want fast-path sent", q2Pre.Action)
	}
	// Finish p's journey (server → switch post pass) to get its final
	// translation: the sport rewrite may execute on either side of the
	// split, so only the fully processed packet is comparable.
	back, err := packet.DecodePacket(rx.Serialize(), res.FormatB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Switch.ProcessPost(back); err != nil {
		t.Fatal(err)
	}
	if q2.TCP.SrcPort != back.TCP.SrcPort {
		t.Errorf("translation mismatch: q2 port %d, p port %d", q2.TCP.SrcPort, back.TCP.SrcPort)
	}
}

// TestIPGatewayDeploymentEquivalence runs the LPM-based gateway through
// the full deployment (LPM tables load onto the switch at configure time).
func TestIPGatewayDeploymentEquivalence(t *testing.T) {
	prog, d := deploy(t, "ipgateway")
	ref := NewSoftware(prog)
	setup := func(st *ir.State) { middleboxes.ConfigureState("ipgateway", st) }
	setup(ref.State)
	if err := d.Configure(setup); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	fast := 0
	for i := 0; i < 1500; i++ {
		dst := packet.MakeIPv4Addr(byte(rng.Intn(30)), byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(20)))
		pktRef := packet.BuildTCP(packet.MakeIPv4Addr(1, 1, 1, 1), dst, 5, 6, packet.TCPOptions{})
		pktDep := pktRef.Clone()
		rRef, err := ref.Process(pktRef)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := d.Process(pktDep)
		if err != nil {
			t.Fatal(err)
		}
		if rRef.Action != tr.Action {
			t.Fatalf("pkt %d: action ref=%v dep=%v", i, rRef.Action, tr.Action)
		}
		if tr.Action == ir.ActionSent && (pktRef.IP.DstIP != pktDep.IP.DstIP || pktRef.IP.TTL != pktDep.IP.TTL) {
			t.Fatalf("pkt %d: hop/ttl mismatch", i)
		}
		if tr.FastPath {
			fast++
		}
	}
	if fast != 1500 {
		t.Errorf("fast path %d/1500; the gateway should never touch the server", fast)
	}
}

// TestServerSideLPM forces an LPM lookup onto the server (unannotated
// table has no P4 realization) and checks the recorder's read path.
func TestServerSideLPM(t *testing.T) {
	src := `
middlebox srvlpm {
    lpm<u32 -> u32> routes;
    proc process(pkt p) {
        let r = routes.lookup(p.ip.daddr);
        if (r.ok) {
            p.ip.daddr = r.v0;
            send(p);
        } else {
            drop(p);
        }
    }
}
`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OffloadedGlobals) != 0 {
		t.Fatalf("unannotated lpm offloaded: %v", res.OffloadedGlobals)
	}
	d := NewDeployment(res)
	if err := d.Configure(func(st *ir.State) {
		st.AddRoute("routes", uint64(packet.MakeIPv4Addr(10, 0, 0, 0)), 8, 42)
	}); err != nil {
		t.Fatal(err)
	}
	pkt := packet.BuildTCP(1, packet.MakeIPv4Addr(10, 1, 2, 3), 1, 2, packet.TCPOptions{})
	tr, err := d.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FastPath {
		t.Error("server-side lpm cannot be fast")
	}
	if tr.Action != ir.ActionSent || uint64(pkt.IP.DstIP) != 42 {
		t.Errorf("action=%v hop=%v", tr.Action, pkt.IP.DstIP)
	}
	miss := packet.BuildTCP(1, packet.MakeIPv4Addr(11, 1, 2, 3), 1, 2, packet.TCPOptions{})
	tr, err = d.Process(miss)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Action != ir.ActionDropped {
		t.Errorf("miss action = %v", tr.Action)
	}
}

// TestDeploymentReconfigureAtomicFlip drives the bare pair's hot-reconfig
// path: a whitelist swap staged through Reconfigure must take effect
// between two packets — the old rule serves the packet before the call,
// the new rule the packet after — on both the server state and the
// offloaded switch tables, in one flip.
func TestDeploymentReconfigureAtomicFlip(t *testing.T) {
	_, d := deploy(t, "firewall")
	tupA := packet.FiveTuple{
		SrcIP: packet.MakeIPv4Addr(10, 0, 0, 1), DstIP: packet.MakeIPv4Addr(93, 184, 0, 7),
		SrcPort: 34000, DstPort: 80, Proto: packet.IPProtocolTCP,
	}
	tupB := tupA
	tupB.SrcIP = packet.MakeIPv4Addr(10, 0, 0, 2)
	if err := d.Configure(func(st *ir.State) { middleboxes.AllowFlow(st, tupA) }); err != nil {
		t.Fatal(err)
	}

	send := func(tup packet.FiveTuple) ir.Action {
		t.Helper()
		pkt := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
			packet.TCPOptions{Flags: packet.TCPFlagACK})
		tr, err := d.Process(pkt)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Action
	}

	if got := send(tupA); got != ir.ActionSent {
		t.Fatalf("pre-reconfig: whitelisted flow A got %v, want sent", got)
	}
	if got := send(tupB); got == ir.ActionSent {
		t.Fatal("pre-reconfig: flow B passed before it was whitelisted")
	}

	keyA := ir.MakeMapKey(uint64(tupA.SrcIP), uint64(tupA.DstIP), uint64(tupA.SrcPort), uint64(tupA.DstPort), uint64(tupA.Proto))
	keyB := ir.MakeMapKey(uint64(tupB.SrcIP), uint64(tupB.DstIP), uint64(tupB.SrcPort), uint64(tupB.DstPort), uint64(tupB.Proto))
	mutate := func(st *ir.State) []switchsim.Update {
		delete(st.Maps["wl_out"], keyA)
		middleboxes.AllowFlow(st, tupB)
		return nil
	}
	updates := []switchsim.Update{
		{Table: "wl_out", Key: keyB, Vals: []uint64{1}},
		{Table: "wl_out", Key: keyA, Delete: true},
	}
	if err := d.Reconfigure(mutate, updates); err != nil {
		t.Fatal(err)
	}

	if got := send(tupB); got != ir.ActionSent {
		t.Fatalf("post-reconfig: whitelisted flow B got %v, want sent", got)
	}
	if got := send(tupA); got == ir.ActionSent {
		t.Fatal("post-reconfig: flow A still passes after its rule was removed")
	}
	if got := d.Switch.Stats().Reconfigs; got != 1 {
		t.Fatalf("switch counted %d reconfigs, want 1", got)
	}
}

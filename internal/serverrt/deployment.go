package serverrt

import (
	"errors"
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/packet"
	"gallium/internal/partition"
	"gallium/internal/switchsim"
)

// Deployment wires a simulated switch and middlebox server into the
// paper's Figure 1 topology and moves packets through pre → server → post
// with real on-the-wire Gallium headers. Synchronization here is
// synchronous (stage, flip, merge before the packet is released), which is
// the output-commit semantics with zero propagation delay; the network
// simulator layers control-plane latency on the same mechanism.
type Deployment struct {
	Switch *switchsim.Switch
	Server *Server
}

// NewDeployment builds a deployment for a partitioned middlebox.
func NewDeployment(res *partition.Result) *Deployment {
	return &Deployment{Switch: switchsim.New(res), Server: New(res)}
}

// Configure seeds middlebox state on both sides: server-resident state is
// set directly, then replicated there through the switch control plane.
func (d *Deployment) Configure(setup func(st *ir.State)) error {
	setup(d.Server.State)
	return d.Switch.SeedFrom(d.Server.State)
}

// Reconfigure applies one control-plane change to the bare pair between
// packets: mutate runs against the authoritative server state (returning
// any extra switch updates, e.g. connection purges), then the given
// updates plus mutate's are staged and made visible as one atomic flip —
// the same §4.3.3 batch the write-back path uses, so a packet processed
// before the call sees only the old configuration and a packet processed
// after sees only the new one. Updates rejected because the target table
// is full stay server-only, matching the write-back soft-failure policy.
func (d *Deployment) Reconfigure(mutate func(st *ir.State) []switchsim.Update, updates []switchsim.Update) error {
	all := append([]switchsim.Update(nil), updates...)
	if mutate != nil {
		all = append(all, mutate(d.Server.State)...)
	}
	for _, u := range all {
		if err := d.Switch.StageWriteback(u); err != nil {
			if errors.Is(err, switchsim.ErrTableFull) {
				continue
			}
			return err
		}
	}
	d.Switch.FlipVisibility()
	d.Switch.MergeWriteback()
	d.Switch.MarkReconfig()
	return nil
}

// Trace describes one packet's full trip.
type Trace struct {
	Action   ir.Action
	FastPath bool
	// Steps per stage.
	PreSteps, SrvSteps, PostSteps int
	// SyncOps is the number of control-plane operations this packet's
	// updates required (0 on the fast path).
	SyncOps int
}

// ClassifyUpdates splits the server's replicated-state updates into cache
// fills (inserts of keys the switch cannot currently serve — safe to apply
// without stalling the packet, since a racing lookup just punts to the
// authoritative server) and synchronous updates (everything else: deletes,
// overwrites of visible entries, register writes, non-cached tables),
// which output commit must wait for. Classification reads switch state
// through VisibleEntry (under the data-plane lock), so the engine's
// control-plane drainer can call it while workers keep processing packets.
func ClassifyUpdates(sw *switchsim.Switch, updates []switchsim.Update) (fills, syncs []switchsim.Update) {
	for _, u := range updates {
		if u.Table != "" && !u.Delete {
			if visible, cached := sw.VisibleEntry(u.Table, u.Key); cached {
				if !visible {
					fills = append(fills, u)
					continue
				}
				if u.ReadFill {
					continue // already cached: nothing to do
				}
			}
		}
		if u.ReadFill {
			continue // read fills never synchronize
		}
		syncs = append(syncs, u)
	}
	return fills, syncs
}

// Process moves one packet through the deployment.
func (d *Deployment) Process(pkt *packet.Packet) (Trace, error) {
	tr := Trace{}
	pre, err := d.Switch.ProcessPre(pkt)
	if err != nil {
		return tr, err
	}
	tr.PreSteps = pre.Steps
	if pre.Punt {
		return d.processPunt(pkt, tr)
	}
	if pre.Action != ir.ActionNext {
		tr.Action = pre.Action
		tr.FastPath = true
		return tr, nil
	}

	// The frame crosses the switch-server link carrying gallium_a; we
	// serialize/reparse to exercise the real wire format.
	wire := pkt.Serialize()
	rx, err := packet.DecodePacket(wire, d.Server.Res.FormatA)
	if err != nil {
		return tr, fmt.Errorf("server rx: %w", err)
	}
	srvRes, err := d.Server.Process(rx)
	if err != nil {
		return tr, err
	}
	tr.SrvSteps = srvRes.Steps

	// Output commit: propagate replicated-state updates through the
	// write-back protocol before the packet is released. Full tables are
	// soft failures: the entry stays server-only.
	if len(srvRes.Updates) > 0 {
		staged := 0
		for _, u := range srvRes.Updates {
			if err := d.Switch.StageWriteback(u); err != nil {
				if errors.Is(err, switchsim.ErrTableFull) {
					continue
				}
				return tr, err
			}
			staged++
		}
		if staged > 0 {
			d.Switch.FlipVisibility()
			d.Switch.MergeWriteback()
			tr.SyncOps = staged + 1
		}
	}

	if srvRes.Action != ir.ActionNext {
		// The server owned the terminator (loop-bound code): the packet
		// leaves via the switch as plain forwarding.
		tr.Action = srvRes.Action
		*pkt = *rx
		return tr, nil
	}

	wire = rx.Serialize()
	back, err := packet.DecodePacket(wire, d.Server.Res.FormatB)
	if err != nil {
		return tr, fmt.Errorf("switch rx from server: %w", err)
	}
	post, err := d.Switch.ProcessPost(back)
	if err != nil {
		return tr, err
	}
	tr.PostSteps = post.Steps
	tr.Action = post.Action
	*pkt = *back
	return tr, nil
}

// processPunt handles a §7 cache-mode punt: the server runs the full
// middlebox against authoritative state; cache fills apply without
// stalling the packet, while updates the switch might already serve are
// synchronized under output commit before release.
func (d *Deployment) processPunt(pkt *packet.Packet, tr Trace) (Trace, error) {
	wire := pkt.Serialize()
	rx, err := packet.DecodePacket(wire, nil)
	if err != nil {
		return tr, fmt.Errorf("server rx (punt): %w", err)
	}
	res, err := d.Server.ProcessFull(rx)
	if err != nil {
		return tr, err
	}
	tr.SrvSteps = res.Steps
	fills, syncs := ClassifyUpdates(d.Switch, res.Updates)
	staged := 0
	for _, u := range append(fills, syncs...) {
		if err := d.Switch.StageWriteback(u); err != nil {
			if errors.Is(err, switchsim.ErrTableFull) {
				continue
			}
			return tr, err
		}
		staged++
	}
	if staged > 0 {
		d.Switch.FlipVisibility()
		d.Switch.MergeWriteback()
	}
	if len(syncs) > 0 {
		tr.SyncOps = len(syncs) + 1
	}
	tr.Action = res.Action
	*pkt = *rx
	return tr, nil
}

// Package gallium is the single entry point to the Gallium toolchain: it
// compiles a MiniClick middlebox, partitions it across a programmable
// switch and a middlebox server (the paper's §4 pipeline), generates the
// deployable P4 and server programs, and builds simulated testbeds and
// deployments from the result.
//
// The facade replaces hand-wiring lang.Compile → partition.Partition →
// p4.Generate/servergen.Generate in every caller:
//
//	art, err := gallium.Compile(src, gallium.Options{})
//	tb, err := art.NewTestbed(gallium.TestbedConfig{Mode: gallium.Offloaded})
//
// Compiled artifacts run three ways, from lowest-level to highest:
// NewTestbed for the sequential virtual-time simulator (Inject,
// Reconfigure — the differential-test oracle), Run for a one-shot batch
// through the concurrent engine, and Open for a long-lived Session with
// live reconfiguration (Feed, Reconfigure, Stats, Serve). Chain composes
// several compiled middleboxes into one pipeline served by a single
// engine pass.
package gallium

import (
	"fmt"
	"os"
	"strings"

	"gallium/internal/analysis"
	"gallium/internal/ir"
	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/p4"
	"gallium/internal/partition"
	"gallium/internal/servergen"
)

// Options tunes the partitioner. The zero value means "paper defaults"
// throughout; the pointer fields distinguish "not set" from an explicit
// zero, so Options{PipelineDepth: gallium.Int(0)} is a real (and
// rejected-by-the-partitioner) request rather than a silent default.
type Options struct {
	// PipelineDepth bounds the longest offloaded dependency chain
	// (Constraint 2). Nil uses the default.
	PipelineDepth *int
	// TransferBytes bounds the synthesized switch↔server header
	// (Constraint 5). Nil uses the paper's 20 bytes.
	TransferBytes *int
	// SwitchMemoryBytes bounds offloaded state (Constraint 1).
	SwitchMemoryBytes *int
	// MetadataBytes bounds per-packet scratchpad state (Constraint 4).
	MetadataBytes *int
	// WeightedObjective enables the §7 weighted offloading objective.
	WeightedObjective bool
	// DisaggregatedRMT relaxes label rules 3/4 for dRMT targets.
	DisaggregatedRMT bool
	// NoRematerialization ablates rematerialization (DESIGN.md).
	NoRematerialization bool
	// CacheEntries runs the named map tables in §7 cache mode with the
	// given switch-resident entry counts.
	CacheEntries map[string]int
	// Verify runs the static-analysis layer (internal/analysis) over the
	// input program and the partitioner output before generating
	// artifacts. Error-severity diagnostics abort the compile with a
	// *VerifyError; surviving warnings land in Artifacts.Diagnostics.
	Verify bool
}

// Int returns a pointer to v, for the Options override fields.
func Int(v int) *int { return &v }

// Constraints resolves the options against the partitioner defaults.
func (o Options) Constraints() partition.Constraints {
	cons := partition.DefaultConstraints()
	if o.PipelineDepth != nil {
		cons.PipelineDepth = *o.PipelineDepth
	}
	if o.TransferBytes != nil {
		cons.TransferBytes = *o.TransferBytes
	}
	if o.SwitchMemoryBytes != nil {
		cons.SwitchMemoryBytes = *o.SwitchMemoryBytes
	}
	if o.MetadataBytes != nil {
		cons.MetadataBytes = *o.MetadataBytes
	}
	cons.WeightedObjective = o.WeightedObjective
	cons.DisaggregatedRMT = o.DisaggregatedRMT
	cons.NoRematerialization = o.NoRematerialization
	if len(o.CacheEntries) > 0 {
		cons.CacheEntries = o.CacheEntries
	}
	return cons
}

// Artifacts is everything Compile produces for one middlebox: the IR, the
// three-way partition, and the two deployable programs.
type Artifacts struct {
	// Name is the middlebox name (from the IR program).
	Name string
	// Source is the MiniClick input.
	Source string
	// Prog is the compiled IR.
	Prog *ir.Program
	// Res is the partitioner output: pre/server/post functions, transfer
	// formats, offloaded globals, and the resource report.
	Res *partition.Result
	// P4 is the generated switch program.
	P4 *p4.Program
	// Server is the generated DPDK-style server program.
	Server *servergen.Program
	// Diagnostics holds the analysis report when Options.Verify was set
	// (warnings and infos only — errors abort Compile).
	Diagnostics analysis.Diagnostics
}

// VerifyError aborts Compile when Options.Verify finds error-severity
// diagnostics: the lint rejected the input program, or the partition
// verifier refused to sign off on the partitioner's output. Artifact
// generation never runs in either case.
type VerifyError struct {
	// Name is the middlebox the diagnostics refer to.
	Name string
	// Diagnostics is the full report, errors first.
	Diagnostics analysis.Diagnostics
}

// Error summarizes the report; VerifyError.Diagnostics has the findings.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("%s: verification failed with %d error(s)\n%s",
		e.Name, e.Diagnostics.CountAtLeast(analysis.Error),
		strings.TrimRight(e.Diagnostics.Render(e.Name), "\n"))
}

// Compile runs the full pipeline over MiniClick source: parse and lower to
// IR, partition under the (possibly overridden) resource constraints, and
// generate both deployable artifacts.
func Compile(src string, opts Options) (*Artifacts, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	res, err := partition.Partition(prog, opts.Constraints())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", prog.Name, err)
	}
	var diags analysis.Diagnostics
	if opts.Verify {
		diags = append(analysis.Lint(prog), analysis.Verify(res)...)
		diags.Sort()
		if diags.HasErrors() {
			return nil, &VerifyError{Name: prog.Name, Diagnostics: diags}
		}
	}
	p4prog, err := p4.Generate(res)
	if err != nil {
		return nil, fmt.Errorf("%s: p4: %w", prog.Name, err)
	}
	srv := servergen.Generate(res)
	return &Artifacts{
		Name:        prog.Name,
		Source:      src,
		Prog:        prog,
		Res:         res,
		P4:          p4prog,
		Server:      srv,
		Diagnostics: diags,
	}, nil
}

// CompileBuiltin compiles one of the built-in evaluation middleboxes by
// name (see Builtins).
func CompileBuiltin(name string, opts Options) (*Artifacts, error) {
	spec, err := middleboxes.Lookup(name)
	if err != nil {
		return nil, err
	}
	return Compile(spec.Source, opts)
}

// CompileTarget compiles a .mc source file (by path) or a built-in
// middlebox (by name) — the CLI's argument convention.
func CompileTarget(target string, opts Options) (*Artifacts, error) {
	if strings.HasSuffix(target, ".mc") {
		data, err := os.ReadFile(target)
		if err != nil {
			return nil, err
		}
		return Compile(string(data), opts)
	}
	if _, err := middleboxes.Lookup(target); err != nil {
		return nil, fmt.Errorf("%q is neither a .mc file nor a built-in middlebox", target)
	}
	return CompileBuiltin(target, opts)
}

// Builtins returns the names CompileBuiltin accepts: the paper five plus
// the scenario-diversity set (tunlb, synproxy, mssclamp, firewall6).
func Builtins() []string {
	names := []string{"minilb", "ipgateway"}
	for _, s := range middleboxes.Extended() {
		names = append(names, s.Name)
	}
	return names
}

package gallium

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gallium/internal/ctlplane"
	"gallium/internal/engine"
	"gallium/internal/ir"
	"gallium/internal/netsim"
)

// ReconfigOp is one typed live-reconfiguration operation accepted by
// Session.Reconfigure: FirewallRuleSwap, LBPoolChange, NATRepartition, or
// TableReplace.
type ReconfigOp = ctlplane.Op

// FirewallRuleSwap atomically replaces the firewall's whitelist.
type FirewallRuleSwap = ctlplane.FirewallRuleSwap

// LBPoolChange atomically replaces a load balancer's weighted backend
// pool, optionally draining connections off removed backends.
type LBPoolChange = ctlplane.LBPoolChange

// Backend is one weighted LBPoolChange pool member.
type Backend = ctlplane.Backend

// NATRepartition re-splits the NAT's external-port space across shards.
type NATRepartition = ctlplane.NATRepartition

// TableReplace atomically replaces one named map's entire content.
type TableReplace = ctlplane.TableReplace

// Pipeline is a chain of compiled middleboxes sharing one engine pass:
// every packet traverses the stages in order (firewall → NAT → LB),
// each stage with its own switch tables and per-shard server state, all
// drained by a single control plane. Build one with Chain, run it with
// Open or Run.
type Pipeline struct {
	stages []*Artifacts
}

// Chain composes compiled middleboxes into a Pipeline in traversal order.
// At least one stage is required; stage names (for galliumctl's by-name
// addressing) are the middlebox names, deduplicated nowhere — address
// duplicate middleboxes by index.
func Chain(arts ...*Artifacts) (*Pipeline, error) {
	if len(arts) == 0 {
		return nil, errors.New("gallium: Chain needs at least one middlebox")
	}
	for i, a := range arts {
		if a == nil {
			return nil, fmt.Errorf("gallium: Chain stage %d is nil", i)
		}
	}
	return &Pipeline{stages: append([]*Artifacts(nil), arts...)}, nil
}

// Stages reports the chain's middlebox names in traversal order.
func (p *Pipeline) Stages() []string {
	names := make([]string, len(p.stages))
	for i, a := range p.stages {
		names[i] = a.Name
	}
	return names
}

// Open starts a long-lived session over the pipeline. See Open.
func (p *Pipeline) Open(opts ...Option) (*Session, error) {
	return openSession(context.Background(), p.stages, opts)
}

// Run streams one workload through the pipeline and closes — the
// chained counterpart of Artifacts.Run.
func (p *Pipeline) Run(ctx context.Context, wl Workload, opts ...Option) (*Report, error) {
	opts = append([]Option{WithFlows(wl.Tuples())}, opts...)
	s, err := openSession(ctx, p.stages, opts)
	if err != nil {
		return nil, err
	}
	feedErr := s.Feed(wl)
	rep, closeErr := s.Close()
	if feedErr != nil {
		return nil, feedErr
	}
	if closeErr != nil {
		return nil, closeErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Session is a long-lived handle on a running engine: traffic flows in
// through Feed while the control plane reconfigures the deployment live
// through Reconfigure — each operation applied as one atomic visibility
// flip with zero packet loss. Feed, Reconfigure, Stats, and Drain may be
// called concurrently with each other; Close tears everything down and
// returns the final report.
//
//	s, err := gallium.Open(art, gallium.WithWorkers(8), gallium.WithScenario())
//	go s.Feed(traffic)
//	err = s.Reconfigure(gallium.LBPoolChange{Backends: pool, Drain: true})
//	rep, err := s.Close()
type Session struct {
	eng     *engine.Engine
	targets []ctlplane.Target
	workers int
	cancel  context.CancelFunc

	settleFns []func(shard int, st *ir.State)
	mergedFns []func(merged *ir.State, exact bool, conflict string)
	// merge combines shard states for the mergedFns hooks; bound to stage
	// 0's artifacts at open time (Artifacts.MergeShardStates).
	merge func(states []*ir.State) (*ir.State, bool, string)

	mu     sync.Mutex
	closed bool
	report *Report
}

// Open starts a long-lived session over one compiled middlebox. Options
// are Run's: workers, mode, scenario seeding (announce planned flows with
// WithFlows), metrics, queue bounds. The session runs until Close.
func Open(a *Artifacts, opts ...Option) (*Session, error) {
	return openSession(context.Background(), []*Artifacts{a}, opts)
}

// openSession builds, seeds, and starts the engine behind Run, Open, and
// Pipeline.Open. ctx aborts the whole session when cancelled (Run's
// context; background for Open, where Close is the only exit).
func openSession(ctx context.Context, arts []*Artifacts, opts []Option) (*Session, error) {
	var cfg runConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	targets := make([]ctlplane.Target, len(arts))
	for i, a := range arts {
		st := engine.StageConfig{Name: a.Name, Res: a.Res}
		if cfg.Mode == netsim.Software {
			st.Res = nil
			st.Prog = a.Prog
		}
		switch {
		case cfg.scenario:
			st.Setup = a.shardScenarioSetup(cfg.flows, workers)
		case i == 0 && len(cfg.seedFns) > 0:
			seeds := cfg.seedFns
			st.Setup = func(shard int, state *ir.State) {
				for _, fn := range seeds {
					fn(shard, state)
				}
			}
		}
		cfg.Config.Stages = append(cfg.Config.Stages, st)
		targets[i] = ctlplane.Target{Name: a.Name, Res: st.Res, Prog: a.Prog}
	}
	eng, err := engine.New(cfg.Config)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	if err := eng.Start(runCtx); err != nil {
		cancel()
		return nil, err
	}
	return &Session{
		eng:       eng,
		targets:   targets,
		workers:   workers,
		cancel:    cancel,
		settleFns: cfg.settleFns,
		mergedFns: cfg.mergedFns,
		merge:     arts[0].MergeShardStates,
	}, nil
}

// Feed streams one workload through the session and blocks until every
// packet of it has settled. Callable repeatedly; injection times must be
// non-decreasing across feeds (the session models one continuous
// deployment). Feed may run concurrently with Reconfigure — that is the
// point of the live control plane — but not with itself or Close.
func (s *Session) Feed(wl Workload) error {
	return s.eng.Feed(wl)
}

// Dispatch injects one packet into the session without a settle barrier:
// the streaming ingress for real-I/O front ends (see internal/udpio),
// where a quiescence barrier per datagram would defeat batching. It
// returns the packet's sequence number; fates arrive asynchronously on
// the WithDeliveries callback. tNs is the arrival timestamp in ns;
// values that run backwards are clamped monotone.
func (s *Session) Dispatch(tNs int64, pkt *Packet) (int64, error) {
	return s.eng.Dispatch(tNs, pkt)
}

// Reconfigure validates one typed operation against the compiled
// partition and applies it to the running session as a single atomic
// visibility flip: every shard's state mutates at a quiescent point, the
// switch updates flip in one RCU snapshot publication, and traffic
// resumes — zero packets lost, no packet ever observing a half-applied
// change. Implements ctlplane.Runtime, so a ctlplane.Server can drive a
// Session directly.
func (s *Session) Reconfigure(op ReconfigOp) error {
	r, err := ctlplane.Compile(op, s.targets, s.workers)
	if err != nil {
		return err
	}
	return s.eng.Reconfigure(r)
}

// Stats settles the engine at a barrier and reports the traffic processed
// so far without stopping it. Safe to call while Feed is streaming.
func (s *Session) Stats() (*Report, error) {
	return s.eng.LiveReport()
}

// StatsPayload implements ctlplane.Runtime: the live counters in wire
// form.
func (s *Session) StatsPayload() (*ctlplane.StatsPayload, error) {
	rep, err := s.Stats()
	if err != nil {
		return nil, err
	}
	p := &ctlplane.StatsPayload{
		Injected:   int64(rep.Stats.Injected),
		Delivered:  int64(rep.Stats.Delivered),
		MBDrops:    int64(rep.Stats.MBDrops),
		QueueDrops: int64(rep.Stats.QueueDrops),
		FastPath:   int64(rep.Stats.FastPath),
		SlowPath:   int64(rep.Stats.SlowPath),
		Reconfigs:  rep.Reconfigs,
		Workers:    rep.Workers,
		PPS:        rep.PPS,
	}
	if f := rep.Flow; f != nil {
		p.FlowCapacity = f.Capacity
		p.FlowOccupancy = f.Occupancy
		p.FlowPeak = f.Peak
		p.FlowExpired = f.Expired
		p.FlowEvicted = f.Evicted
	}
	for i, sw := range rep.SwitchStages {
		p.Stages = append(p.Stages, ctlplane.StageStats{
			Name:      s.eng.StageName(i),
			FastPath:  sw.FastPath,
			ToServer:  sw.ToServer,
			CtlOps:    sw.CtlOps,
			CtlFlips:  sw.CtlFlips,
			Reconfigs: sw.Reconfigs,
			Epoch:     sw.Epoch,
		})
	}
	return p, nil
}

// StageNames implements ctlplane.Runtime: the pipeline's middlebox names
// in stage order.
func (s *Session) StageNames() []string {
	names := make([]string, s.eng.Stages())
	for i := range names {
		names[i] = s.eng.StageName(i)
	}
	return names
}

// Drain blocks until every packet and control batch dispatched so far has
// fully settled — the quiescence barrier between phases of a live
// experiment. Traffic fed concurrently is unaffected.
func (s *Session) Drain() error {
	_, err := s.eng.LiveReport()
	return err
}

// Close stops the session — joins the workers and the control-plane
// drainer — and returns the final report. Any WithState /
// WithShardStates hooks observe each shard's final state here, and
// WithMergedState hooks then receive the certificate-policy merge of
// those states. Idempotent: later calls return the first result.
func (s *Session) Close() (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.report == nil {
			return nil, errors.New("gallium: session already closed with error")
		}
		return s.report, nil
	}
	s.closed = true
	rep, err := s.eng.Stop()
	s.cancel()
	if err != nil {
		return nil, err
	}
	if len(s.settleFns) > 0 || len(s.mergedFns) > 0 {
		states := s.eng.ShardStates()
		for shard, st := range states {
			for _, fn := range s.settleFns {
				fn(shard, st)
			}
		}
		if len(s.mergedFns) > 0 {
			merged, exact, conflict := s.merge(states)
			for _, fn := range s.mergedFns {
				fn(merged, exact, conflict)
			}
		}
	}
	s.report = rep
	return rep, nil
}

// Serve exposes the session's control plane on a unix socket speaking the
// galliumctl JSON protocol. Returns the server; Close it before closing
// the session.
func (s *Session) Serve(path string) (*ctlplane.Server, error) {
	srv := ctlplane.NewServer(s)
	if err := srv.Listen(path); err != nil {
		return nil, err
	}
	return srv, nil
}

// Uptime reports wall-clock time since Open, for serving CLIs.
func (s *Session) Uptime() time.Duration { return s.eng.Uptime() }

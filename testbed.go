package gallium

import (
	"fmt"

	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/netsim"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/serverrt"
)

// Mode selects the deployment under test.
type Mode = netsim.Mode

// Deployment modes.
const (
	// Offloaded runs the Gallium-compiled switch+server pair.
	Offloaded = netsim.Offloaded
	// Software runs the unpartitioned middlebox on the server (the
	// FastClick baseline), with the switch as a plain forwarder.
	Software = netsim.Software
)

// ParseMode parses "offloaded" or "software" (the CLI flag values). On
// error it returns the zero Mode — not Offloaded — so a caller that drops
// the error cannot silently run the wrong deployment.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "offloaded":
		return Offloaded, nil
	case "software":
		return Software, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want %v or %v)", s, Offloaded, Software)
}

// TestbedConfig describes one simulated testbed built from compiled
// artifacts. The zero value runs the offloaded deployment on one server
// core under the default cost model, with no state seeded and
// observability off.
type TestbedConfig struct {
	// Mode is Offloaded (default) or Software.
	Mode Mode
	// Cores is the middlebox server core count; <=0 means 1.
	Cores int
	// Model overrides the testbed cost model; nil uses the default.
	Model *netsim.CostModel
	// Setup seeds middlebox state before traffic starts.
	Setup func(st *ir.State)
	// Scenario, when true, seeds the middlebox's standard benchmark
	// scenario instead of Setup: configured state (backends, NAT pools),
	// firewall whitelists for Flows, and the proxy port redirect.
	Scenario bool
	// Flows lists the traffic five-tuples the scenario whitelists.
	Flows []packet.FiveTuple
	// Metrics, when non-nil, receives counters, histograms, and (if
	// tracing is enabled on it) per-packet hop traces from every
	// component. Nil disables observability at zero cost.
	Metrics *obs.Registry
}

// NewTestbed builds the packet-level simulator — traffic endpoints,
// programmable switch, middlebox server — around these artifacts.
//
// The testbed's Inject is the low-level escape hatch: a sequential,
// virtual-time, packet-at-a-time model with deterministic latencies,
// right for latency experiments, per-packet traces, and differential
// tests that need exact control over injection times. Its Reconfigure
// applies a control-plane change between two injections, which makes it
// the oracle counterpart of Session.Reconfigure: differential tests
// apply the same compiled change at the same packet index on both
// sides. For streaming a workload through the concurrent engine, use
// Artifacts.Run (one-shot) or Open (long-lived Session with live
// reconfiguration) instead.
func (a *Artifacts) NewTestbed(cfg TestbedConfig) (*netsim.Testbed, error) {
	model := netsim.DefaultModel()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	setup := cfg.Setup
	if cfg.Scenario {
		setup = a.ScenarioSetup(cfg.Flows)
	}
	return netsim.NewTestbed(netsim.Config{
		Model: model,
		Mode:  cfg.Mode,
		Cores: cfg.Cores,
		Res:   a.Res,
		Prog:  a.Prog,
		Setup: setup,
		Obs:   cfg.Metrics,
	})
}

// ScenarioSetup returns the state-seeding function for the middlebox's
// standard benchmark scenario: configured state for its name, firewall
// whitelist entries for the given flows, and the proxy port redirect.
func (a *Artifacts) ScenarioSetup(flows []packet.FiveTuple) func(st *ir.State) {
	name := a.Name
	return func(st *ir.State) {
		middleboxes.ConfigureState(name, st)
		switch name {
		case "firewall":
			for _, tup := range flows {
				middleboxes.AllowFlow(st, tup)
			}
		case "proxy":
			middleboxes.RedirectPort(st, 5001)
		}
	}
}

// NewDeployment builds the bare switch+server pair (no timing model) for
// packet-at-a-time experiments, seeding state with setup when non-nil.
func (a *Artifacts) NewDeployment(setup func(st *ir.State)) (*serverrt.Deployment, error) {
	d := serverrt.NewDeployment(a.Res)
	if setup != nil {
		if err := d.Configure(setup); err != nil {
			return nil, err
		}
	}
	return d, nil
}

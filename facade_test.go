package gallium_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gallium"
	"gallium/internal/analysis"
	"gallium/internal/middleboxes"
	"gallium/internal/obs"
	"gallium/internal/packet"
)

func TestCompileProducesAllArtifacts(t *testing.T) {
	art, err := gallium.Compile(middleboxes.MiniLBSource, gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if art.Name != "minilb" {
		t.Errorf("Name = %q, want minilb", art.Name)
	}
	if art.Prog == nil || art.Res == nil || art.P4 == nil || art.Server == nil {
		t.Fatalf("incomplete artifacts: %+v", art)
	}
	if art.Source != middleboxes.MiniLBSource {
		t.Error("Source not preserved")
	}
	if art.P4.LinesOfCode() == 0 || art.Server.LinesOfCode() == 0 {
		t.Error("generated programs are empty")
	}
}

// The pointer fields distinguish "unset" from an explicit zero: the zero
// Options value must compile fine, while Int(0) must reach the partitioner
// and be rejected there.
func TestOptionsPointerPresence(t *testing.T) {
	if _, err := gallium.Compile(middleboxes.MiniLBSource, gallium.Options{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	_, err := gallium.Compile(middleboxes.MiniLBSource, gallium.Options{PipelineDepth: gallium.Int(0)})
	if err == nil || !strings.Contains(err.Error(), "pipeline depth") {
		t.Fatalf("explicit depth 0 not rejected: %v", err)
	}
	// A tight transfer budget must also flow through: with 1 byte the
	// partitioner cannot ship intermediate values, so less offloads.
	def, err := gallium.Compile(middleboxes.MazuNATSource, gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := gallium.Compile(middleboxes.MazuNATSource, gallium.Options{TransferBytes: gallium.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Res.Report.NumPre+tight.Res.Report.NumPost >= def.Res.Report.NumPre+def.Res.Report.NumPost {
		t.Errorf("1-byte transfer budget did not reduce offloading: tight=%d default=%d",
			tight.Res.Report.NumPre+tight.Res.Report.NumPost,
			def.Res.Report.NumPre+def.Res.Report.NumPost)
	}
}

func TestCompileBuiltinAndTarget(t *testing.T) {
	if _, err := gallium.CompileBuiltin("firewall", gallium.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := gallium.CompileBuiltin("nosuchbox", gallium.Options{}); err == nil {
		t.Fatal("unknown builtin accepted")
	}

	// CompileTarget: a .mc file on disk...
	dir := t.TempDir()
	path := filepath.Join(dir, "box.mc")
	if err := os.WriteFile(path, []byte(middleboxes.MiniLBSource), 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := gallium.CompileTarget(path, gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if art.Name != "minilb" {
		t.Errorf("file target name = %q", art.Name)
	}
	// ...a builtin by name...
	if _, err := gallium.CompileTarget("proxy", gallium.Options{}); err != nil {
		t.Fatal(err)
	}
	// ...and anything else is a clear error.
	if _, err := gallium.CompileTarget("bogus", gallium.Options{}); err == nil {
		t.Fatal("bogus target accepted")
	}
}

func TestBuiltinsListsEveryMiddlebox(t *testing.T) {
	names := gallium.Builtins()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"minilb", "mazunat", "l4lb", "firewall", "proxy", "trojandetector"} {
		if !have[want] {
			t.Errorf("Builtins() missing %q (got %v)", want, names)
		}
	}
	for _, n := range names {
		if _, err := gallium.CompileBuiltin(n, gallium.Options{}); err != nil {
			t.Errorf("builtin %s does not compile: %v", n, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	if m, err := gallium.ParseMode("offloaded"); err != nil || m != gallium.Offloaded {
		t.Errorf("offloaded: %v %v", m, err)
	}
	if m, err := gallium.ParseMode("software"); err != nil || m != gallium.Software {
		t.Errorf("software: %v %v", m, err)
	}
	m, err := gallium.ParseMode("hybrid")
	if err == nil {
		t.Error("bad mode accepted")
	}
	// The error must come with the zero Mode, never a real deployment: a
	// caller ignoring the error would otherwise silently run Offloaded.
	if m == gallium.Offloaded || m == gallium.Software {
		t.Errorf("ParseMode error returned live mode %v, want zero Mode", m)
	}
	if !strings.Contains(err.Error(), "offloaded") || !strings.Contains(err.Error(), "software") {
		t.Errorf("error %q does not name the valid modes", err)
	}
}

func TestModeString(t *testing.T) {
	if got := gallium.Offloaded.String(); got != "offloaded" {
		t.Errorf("Offloaded.String() = %q", got)
	}
	if got := gallium.Software.String(); got != "software" {
		t.Errorf("Software.String() = %q", got)
	}
	if got := gallium.Mode(0).String(); got != "mode(0)" {
		t.Errorf("zero Mode String() = %q", got)
	}
}

// End-to-end through the facade: compile, build an instrumented testbed,
// push traffic, and check the Snapshot carries the promised metrics.
func TestTestbedMetricsEndToEnd(t *testing.T) {
	art, err := gallium.CompileBuiltin("mazunat", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flows := []packet.FiveTuple{{
		SrcIP: packet.MakeIPv4Addr(10, 0, 1, 1), DstIP: packet.MakeIPv4Addr(20, 0, 0, 1),
		SrcPort: 3333, DstPort: 80, Proto: packet.IPProtocolTCP,
	}}
	reg := obs.NewRegistry()
	reg.EnableTracing(3)
	tb, err := art.NewTestbed(gallium.TestbedConfig{
		Mode: gallium.Offloaded, Cores: 1, Scenario: true, Flows: flows, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := flows[0]
	tNs := int64(0)
	for i := 0; i < 50; i++ {
		p := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
		if _, err := tb.Inject(tNs, p); err != nil {
			t.Fatal(err)
		}
		tNs += 200_000
	}

	snap := reg.Snapshot()
	if got := snap.Counters["e2e.injected"]; got != 50 {
		t.Errorf("e2e.injected = %d, want 50", got)
	}
	if snap.Counters["e2e.delivered"] == 0 {
		t.Error("nothing delivered")
	}
	if snap.Counters["switch.fastpath"] == 0 {
		t.Error("established flow never took the fast path")
	}
	found := false
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "switch.table.") && strings.HasSuffix(name, ".hits") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no per-table hit counter recorded")
	}
	lat, ok := snap.Histograms["e2e.latency_ns"]
	if !ok || lat.Count == 0 {
		t.Fatalf("latency histogram missing or empty: %+v", lat)
	}
	if lat.P50 <= 0 || lat.P95 < lat.P50 || lat.P99 < lat.P95 {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", lat.P50, lat.P95, lat.P99)
	}
	if n := len(reg.Tracer().Traces()); n != 3 {
		t.Errorf("trace count = %d, want capacity 3", n)
	}
	if js, err := snap.JSON(); err != nil || len(js) == 0 {
		t.Errorf("snapshot JSON: %v", err)
	}

	// The same config with Metrics nil must still work (the zero-cost path).
	tb2, err := art.NewTestbed(gallium.TestbedConfig{Mode: gallium.Offloaded, Scenario: true, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	p := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
	if _, err := tb2.Inject(0, p); err != nil {
		t.Fatal(err)
	}
}

func TestNewDeploymentSeedsState(t *testing.T) {
	art, err := gallium.CompileBuiltin("l4lb", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.NewDeployment(art.ScenarioSetup(nil))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.BuildTCP(packet.MakeIPv4Addr(172, 16, 0, 1), packet.MakeIPv4Addr(10, 0, 2, 2), 5000, 80,
		packet.TCPOptions{Flags: packet.TCPFlagSYN})
	tr, err := dep.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FastPath {
		t.Error("first SYN should take the slow path")
	}
}

// TestCompileVerifyCleanBuiltins runs every built-in middlebox through the
// full pipeline with the static-analysis layer gating artifact emission:
// the lint and the partition verifier must both sign off.
func TestCompileVerifyCleanBuiltins(t *testing.T) {
	for _, name := range gallium.Builtins() {
		t.Run(name, func(t *testing.T) {
			art, err := gallium.CompileBuiltin(name, gallium.Options{Verify: true})
			if err != nil {
				t.Fatalf("verified compile failed: %v", err)
			}
			if art.P4 == nil || art.Server == nil {
				t.Fatal("verification gated artifact emission on a clean program")
			}
			if art.Diagnostics.HasErrors() {
				t.Fatalf("error diagnostics survived a successful compile:\n%s",
					art.Diagnostics.Render(name))
			}
		})
	}
}

// TestCompileVerifyCleanExamples does the same for the .mc sources under
// examples/mc via the CLI's target convention.
func TestCompileVerifyCleanExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "mc", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example sources found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			art, err := gallium.CompileTarget(path, gallium.Options{Verify: true})
			if err != nil {
				t.Fatalf("verified compile failed: %v", err)
			}
			if art.P4 == nil {
				t.Fatal("no artifacts emitted")
			}
		})
	}
}

func TestCompileWithoutVerifySkipsAnalysis(t *testing.T) {
	art, err := gallium.Compile(middleboxes.MiniLBSource, gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if art.Diagnostics != nil {
		t.Errorf("analysis ran without Verify: %v", art.Diagnostics)
	}
}

// TestVerifyErrorMessage pins the error surface callers (and galliumc)
// rely on: the count and the rendered findings with their check IDs.
func TestVerifyErrorMessage(t *testing.T) {
	e := &gallium.VerifyError{
		Name: "mb",
		Diagnostics: analysis.Diagnostics{
			{Check: analysis.CheckCoverage, Severity: analysis.Error, Message: "statement lost", Stmt: -1},
		},
	}
	msg := e.Error()
	for _, want := range []string{"mb", "1 error(s)", analysis.CheckCoverage, "statement lost"} {
		if !strings.Contains(msg, want) {
			t.Errorf("VerifyError message %q missing %q", msg, want)
		}
	}
}

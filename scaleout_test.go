package gallium_test

import (
	"sync"
	"testing"
	"time"

	gallium "gallium"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
)

// reorderedWL emits `rounds` interleaved packets for every tuple, tagging
// each packet's TCP sequence number with its global per-flow round (base
// + local index), so deliveries can be checked for exact per-flow order
// across multiple Feed calls.
type reorderedWL struct {
	tuples []packet.FiveTuple
	base   int
	rounds int
	t0     int64
}

func (c reorderedWL) Tuples() []packet.FiveTuple { return c.tuples }

func (c reorderedWL) Generate(emit func(int64, *packet.Packet) error) error {
	tNs := c.t0
	for r := 0; r < c.rounds; r++ {
		for _, tup := range c.tuples {
			pkt := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort,
				packet.TCPOptions{Flags: packet.TCPFlagACK, Seq: uint32(c.base + r)})
			if err := emit(tNs, pkt); err != nil {
				return err
			}
			tNs += 500
		}
	}
	return nil
}

// TestScaleOutReconfigureUnderTraffic is the per-shard control-plane
// property test: 8 workers — so 8 independent control-lane drainers —
// stream load-balancer traffic while the control plane concurrently
// applies LB pool changes and flow-table retunes. The invariants the
// sharded drainers must preserve: zero packet loss, exact per-flow
// delivery order, and every reconfiguration applied as one visibility
// flip. Run under -race in CI.
func TestScaleOutReconfigureUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained concurrent session; runs in full mode and CI (-race)")
	}
	const (
		nFlows   = 32
		chunks   = 6
		perChunk = 10 // rounds per Feed
	)
	tuples := make([]packet.FiveTuple, nFlows)
	for i := range tuples {
		tuples[i] = packet.FiveTuple{
			SrcIP:   packet.MakeIPv4Addr(172, 16, 0, byte(1+i)),
			DstIP:   packet.MakeIPv4Addr(10, 0, 2, 2),
			SrcPort: uint16(5000 + i),
			DstPort: 80,
			Proto:   packet.IPProtocolTCP,
		}
	}

	art, err := gallium.CompileBuiltin("l4lb", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seqs := map[packet.FiveTuple][]uint32{}
	var undelivered int
	s, err := gallium.Open(art,
		gallium.WithWorkers(8),
		gallium.WithScenario(),
		gallium.WithFlows(tuples),
		gallium.WithFlowTable(gallium.FlowTable{Capacity: 2048, UDPTimeout: time.Second}),
		gallium.WithDeliveries(func(d gallium.Delivery) {
			mu.Lock()
			defer mu.Unlock()
			if !d.Delivered {
				undelivered++
				return
			}
			seqs[d.Flow] = append(seqs[d.Flow], d.Pkt.TCP.Seq)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Feeder: one goroutine streams chunk after chunk (Feed must not race
	// with itself, but races freely with Reconfigure — that is the claim).
	feedDone := make(chan error, 1)
	go func() {
		for k := 0; k < chunks; k++ {
			wl := reorderedWL{
				tuples: tuples,
				base:   k * perChunk,
				rounds: perChunk,
				t0:     int64(k) * int64(perChunk*nFlows) * 500,
			}
			if err := s.Feed(wl); err != nil {
				feedDone <- err
				return
			}
		}
		feedDone <- nil
	}()

	// Control plane: alternate typed reconfigurations against the live
	// session until the feeder finishes. Both shapes are exercised — the
	// global table-replace path (LBPoolChange) and the flow-table retune.
	pools := [][]gallium.Backend{
		{
			{Addr: packet.IPv4Addr(middleboxes.Backends[0]), Weight: 2},
			{Addr: packet.IPv4Addr(middleboxes.Backends[1]), Weight: 1},
			{Addr: packet.IPv4Addr(middleboxes.Backends[2]), Weight: 1},
			{Addr: packet.IPv4Addr(middleboxes.Backends[3]), Weight: 1},
		},
		{
			{Addr: packet.IPv4Addr(middleboxes.Backends[0]), Weight: 1},
			{Addr: packet.IPv4Addr(middleboxes.Backends[1]), Weight: 3},
			{Addr: packet.IPv4Addr(middleboxes.Backends[2]), Weight: 1},
			{Addr: packet.IPv4Addr(middleboxes.Backends[3]), Weight: 2},
		},
	}
	reconfigs := 0
	var feedErr error
	for done := false; !done; {
		select {
		case feedErr = <-feedDone:
			done = true
		default:
			var op gallium.ReconfigOp
			switch reconfigs % 3 {
			case 0, 1:
				op = gallium.LBPoolChange{Backends: pools[reconfigs%2]}
			case 2:
				op = gallium.FlowTableUpdate{Table: gallium.FlowTable{
					Capacity:   2048 + 1024*(reconfigs%2),
					UDPTimeout: time.Second,
				}}
			}
			if err := s.Reconfigure(op); err != nil {
				t.Fatal(err)
			}
			reconfigs++
		}
	}
	if feedErr != nil {
		t.Fatal(feedErr)
	}

	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	const total = nFlows * chunks * perChunk
	if rep.Stats.Injected != total {
		t.Fatalf("injected %d of %d", rep.Stats.Injected, total)
	}
	if rep.Stats.Delivered != total || undelivered != 0 {
		t.Fatalf("lost packets under reconfiguration: delivered %d of %d (%d undelivered; stats %+v)",
			rep.Stats.Delivered, total, undelivered, rep.Stats)
	}
	if len(seqs) != nFlows {
		t.Fatalf("saw %d flows, want %d", len(seqs), nFlows)
	}
	for tup, got := range seqs {
		if len(got) != chunks*perChunk {
			t.Fatalf("flow %v: %d deliveries, want %d", tup, len(got), chunks*perChunk)
		}
		for i, seq := range got {
			if seq != uint32(i) {
				t.Fatalf("flow %v: delivery %d carries seq %d — per-flow order violated under reconfiguration",
					tup, i, seq)
			}
		}
	}
	if reconfigs == 0 || rep.Reconfigs != reconfigs {
		t.Fatalf("applied %d reconfigurations, report says %d", reconfigs, rep.Reconfigs)
	}
	if !rep.AdaptiveBatch {
		t.Error("default session did not run the adaptive batch controller")
	}
	if rep.Stats.CtlBatches == 0 {
		t.Error("slow-path traffic drained no control batches")
	}
}

package gallium_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gallium"
	"gallium/internal/middleboxes"
)

var update = flag.Bool("update", false, "rewrite golden files with current compiler output")

// TestGoldenArtifacts pins the emitted P4 and server programs for every
// harnessed middlebox byte-for-byte — the paper five plus the
// scenario-diversity set (tunlb, synproxy, mssclamp, firewall6).
// Codegen churn is invisible in unit tests and expensive to review after
// the fact; this makes every output change show up as a reviewable diff.
// Run `go test -run Golden -update .` after an intentional change.
func TestGoldenArtifacts(t *testing.T) {
	t.Parallel()
	for _, spec := range middleboxes.Extended() {
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			art, err := gallium.Compile(spec.Source, gallium.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", spec.Name+".p4"), art.P4.Source)
			compareGolden(t, filepath.Join("testdata", "golden", spec.Name+".server"), art.Server.Source)
		})
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update .`): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s differs from golden output; diff the file against the compiler output,\n"+
			"and run `go test -run Golden -update .` if the change is intentional", path)
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if want[i] != got[i] {
				t.Logf("first difference at %s:%d", path, line)
				break
			}
			if want[i] == '\n' {
				line++
			}
		}
	}
}

package gallium

import (
	"fmt"

	"gallium/internal/ctlplane"
	"gallium/internal/flowstate"
)

// FlowTable bounds a session's dynamic flow state: the maps the data
// path inserts into (connection trackers, NAT bindings, LB connection
// tables) gain per-entry last-touch stamping, protocol-aware session
// timeouts, and capacity enforcement.
//
//	gallium.Open(art, gallium.WithFlowTable(gallium.FlowTable{
//		Capacity:    1 << 20,
//		TCPTimeouts: gallium.TCPTimeouts{Established: 5 * time.Minute},
//		UDPTimeout:  30 * time.Second,
//	}))
//
// Capacity is the engine-wide concurrent-entry limit, split evenly
// across worker shards. Zero timeout fields select the defaults (TCP
// SYN 5s / established 5m / FIN 10s, UDP 30s). Expiry runs
// incrementally between worker batches and exactly at settle barriers;
// switch-resident entries are deleted through the §4.3.3 write-back
// flip, so an expiry can never resurrect stale state.
type FlowTable = flowstate.Config

// TCPTimeouts holds FlowTable's per-phase TCP session timeouts
// (SYN = half-open, Established, Fin = closing).
type TCPTimeouts = flowstate.TCPTimeouts

// EvictPolicy selects FlowTable's over-capacity behavior.
type EvictPolicy = flowstate.EvictPolicy

// Eviction policies: EvictLRU (default) evicts the least-recently
// touched entries over capacity; EvictNone only reports occupancy and
// lets timeouts catch up.
const (
	EvictLRU  = flowstate.EvictLRU
	EvictNone = flowstate.EvictNone
)

// FlowTableUpdate retunes (or first arms) a running session's flow
// table via Session.Reconfigure — capacity, timeouts, and policy change
// at one reconfiguration barrier, atomically with respect to traffic.
type FlowTableUpdate = ctlplane.FlowTableUpdate

// WithFlowTable bounds the session's flow state with ft. The config is
// validated up front: non-positive capacity, negative timeouts,
// inverted TCP phase timeouts (SYN or FIN exceeding Established), and
// unknown eviction policies are errors surfaced from Run/Open, not
// silent fallbacks.
func WithFlowTable(ft FlowTable) Option {
	return func(c *runConfig) {
		if err := ft.Validate(); err != nil {
			c.fail(fmt.Errorf("gallium: WithFlowTable: %w", err))
			return
		}
		cfg := ft
		c.FlowTable = &cfg
	}
}

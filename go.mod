module gallium

go 1.22

package gallium

import (
	"fmt"

	"gallium/internal/analysis/dataflow"
	"gallium/internal/ir"
)

// FlowAffinity is the flow-affinity certificate the partitioner derives
// for every compiled program: a machine-checked, per-map answer to "is
// cross-packet state partitioned by ingress flow?". See
// internal/analysis/dataflow for the underlying taint analysis.
type FlowAffinity = dataflow.Affinity

// Affinity returns the artifacts' flow-affinity certificate, or nil when
// no partition result is attached.
func (a *Artifacts) Affinity() *FlowAffinity {
	if a.Res == nil {
		return nil
	}
	return a.Res.Affinity
}

// MergeShardStates combines per-worker final states into one view, with
// the merge policy selected by the flow-affinity certificate.
//
// When the certificate is Exact — every map key a pure flow identity, no
// scalar global written — concurrent shards partition state exactly, so
// the merge is the disjoint union of map entries with scalars required
// identical across shards. Any violation falsifies the certificate; it
// is returned as a non-empty conflict with a nil merged state, and
// callers should treat it like a failed differential run.
//
// Otherwise the merge is relaxed: map entries union with later shards
// winning key collisions, and scalars, vectors, and LPM tables keep
// shard 0's values. That is a diagnostic view — cross-flow state
// legitimately interleaves under concurrency and has no sequential
// equivalent to reconstruct.
//
// exact reports which policy ran. A nil or empty states slice returns a
// nil merged state.
func (a *Artifacts) MergeShardStates(states []*ir.State) (merged *ir.State, exact bool, conflict string) {
	if len(states) == 0 {
		return nil, false, ""
	}
	cert := a.Affinity()
	exact = cert != nil && cert.Exact()
	merged = states[0].Clone()
	for si, st := range states[1:] {
		for name, m := range st.Maps {
			if merged.Maps[name] == nil {
				merged.Maps[name] = map[ir.MapKey][]uint64{}
			}
			for k, v := range m {
				if ex, ok := merged.Maps[name][k]; ok && exact {
					return nil, true, fmt.Sprintf(
						"map %s: key %v present on multiple shards (%v vs %v) despite an exact certificate",
						name, k, ex, v)
				}
				merged.Maps[name][k] = append([]uint64(nil), v...)
			}
		}
		if !exact {
			continue
		}
		for name, v := range st.Globals {
			if mv := merged.Globals[name]; mv != v {
				return nil, true, fmt.Sprintf(
					"global %s: shard 0 has %d, shard %d has %d despite an exact certificate",
					name, mv, si+1, v)
			}
		}
	}
	return merged, exact, ""
}

// Firewall latency: the firewall compiles to a pure-switch program (every
// packet takes the fast path, §6.2), so Gallium's latency win is exactly
// the cost of the server detour. This example measures both deployments
// with Nptcp-style probes and prints the per-hop latency budget so the
// ~31% reduction (Table 2) is visible component by component.
//
// Run with: go run ./examples/firewalllatency
package main

import (
	"context"
	"fmt"
	"log"

	"gallium"
	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/netsim"
	"gallium/internal/packet"
	"gallium/internal/trafficgen"
)

func main() {
	art, err := gallium.CompileBuiltin("firewall", gallium.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if art.Res.Report.NumSrv != 0 {
		log.Fatalf("firewall should be fully offloaded, server has %d statements", art.Res.Report.NumSrv)
	}
	fmt.Printf("firewall partition: %d statements, all on the switch (%d tables)\n\n",
		art.Res.Report.NumStmts, len(art.Res.OffloadedGlobals))

	tup := packet.FiveTuple{
		SrcIP: packet.MakeIPv4Addr(10, 0, 0, 1), DstIP: packet.MakeIPv4Addr(8, 8, 8, 8),
		SrcPort: 4000, DstPort: 443, Proto: packet.IPProtocolTCP,
	}
	measure := func(mode gallium.Mode) float64 {
		probes := trafficgen.ProbeConfig{Tuple: tup, Count: 20, PacketSize: 500}
		rep, err := art.Run(context.Background(), probes,
			gallium.WithMode(mode),
			gallium.WithState(func(shard int, st *ir.State) { middleboxes.AllowFlow(st, tup) }),
		)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Stats.Delivered != rep.Stats.Injected {
			log.Fatalf("%d of %d probes dropped", rep.Stats.Injected-rep.Stats.Delivered, rep.Stats.Injected)
		}
		return rep.Latency.Mean / 1000
	}

	gal := measure(gallium.Offloaded)
	fc := measure(gallium.Software)

	m := netsim.DefaultModel()
	fmt.Println("per-hop latency budget (µs):")
	fmt.Printf("  endpoint stacks (2x)        %6.2f\n", 2*m.EndpointStackNs/1000)
	fmt.Printf("  switch pipeline (per pass)  %6.2f\n", m.SwitchPipelineNs/1000)
	fmt.Printf("  link hop (per hop)          %6.2f\n", m.LinkPropNs/1000)
	fmt.Printf("  server datapath (sw only)   %6.2f\n", m.ServerDatapathNs/1000)
	fmt.Println()
	fmt.Printf("measured: FastClick %.2f µs, Gallium %.2f µs  ->  %.1f%% lower\n",
		fc, gal, 100*(fc-gal)/fc)
	fmt.Println("(Table 2 of the paper: 22.45 µs vs 15.96 µs, ~29%)")
}

// Quickstart: compile the paper's MiniLB running example (§4) and walk
// through what Gallium produces — the dependency-driven three-way
// partition (Figure 4), the synthesized packet formats (Figure 5), and the
// deployable P4 + server artifacts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/p4"
	"gallium/internal/partition"
	"gallium/internal/servergen"
)

func main() {
	// 1. Compile the MiniClick source to IR.
	prog, err := lang.Compile(middleboxes.MiniLBSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== input middlebox (IR) ===")
	fmt.Print(prog.String())

	// 2. Partition it for the switch (§4.2): label removal + resource
	// constraints.
	res, err := partition.Partition(prog, partition.DefaultConstraints())
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("\n=== partition (Figure 4) ===\n")
	fmt.Printf("pre-processing: %d statements, non-offloaded: %d, post-processing: %d (%.0f%% offloaded)\n",
		r.NumPre, r.NumSrv, r.NumPost, 100*r.OffloadFraction())
	for _, gn := range res.OffloadedGlobals {
		fmt.Printf("offloaded global %q -> switch (access at statement %d)\n", gn, res.SwitchAccess[gn])
	}

	// 3. The synthesized packet formats (Figure 5).
	fmt.Printf("\n=== transfer headers (Figure 5) ===\n")
	fmt.Printf("pre -> server: %s (%d bytes on the wire)\n", res.FormatA, res.FormatA.DataLen())
	fmt.Printf("server -> post: %s (%d bytes on the wire)\n", res.FormatB, res.FormatB.DataLen())

	// 4. The three partition functions.
	fmt.Printf("\n=== pre-processing partition (runs on the switch) ===\n")
	fmt.Print(res.PreFn.String())
	fmt.Printf("\n=== non-offloaded partition (runs on the server) ===\n")
	fmt.Print(res.SrvFn.String())
	fmt.Printf("\n=== post-processing partition (runs on the switch) ===\n")
	fmt.Print(res.PostFn.String())

	// 5. Deployable artifacts.
	p4prog, err := p4.Generate(res)
	if err != nil {
		log.Fatal(err)
	}
	srv := servergen.Generate(res)
	fmt.Printf("\n=== artifacts ===\n")
	fmt.Printf("P4 program: %d lines; server program: %d lines\n", p4prog.LinesOfCode(), srv.LinesOfCode())
	fmt.Printf("run `go run ./cmd/galliumc -print p4 minilb` to see the P4 source\n")
}

// NAT offload: run MazuNAT through the concurrent engine in both
// deployments — Gallium-offloaded (switch + one server shard) and the
// software baseline on four shards — under identical iperf-style traffic,
// and compare throughput, latency, fast-path coverage, and server cycles.
// This is the paper's headline scenario (§6.3) in miniature.
//
// Run with: go run ./examples/natoffload
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"gallium"
	"gallium/internal/trafficgen"
)

func main() {
	art, err := gallium.CompileBuiltin("mazunat", gallium.Options{})
	if err != nil {
		log.Fatal(err)
	}

	gen := trafficgen.IperfConfig{
		Conns: 10, PacketSize: 500, PPS: 6e6, DurationNs: 10_000_000, Seed: 7,
	}

	type outcome struct {
		label   string
		gbps    float64
		probeUs float64
		fastPct float64
		cycles  float64
	}
	run := func(label string, mode gallium.Mode, workers int) outcome {
		// Throughput phase: sustained load through the engine.
		rep, err := art.Run(context.Background(), gen,
			gallium.WithMode(mode), gallium.WithWorkers(workers), gallium.WithScenario())
		if err != nil {
			log.Fatal(err)
		}
		st := rep.Stats

		// Latency phase: Nptcp-style probes on a fresh, idle engine (as in
		// the paper, latency is measured without background load). The
		// leading SYN opens the NAT mapping and is excluded from the mean.
		probes := trafficgen.ProbeConfig{
			Tuple: gen.Tuples()[0], Count: 21, PacketSize: 500, SYNFirst: true,
		}
		var mu sync.Mutex
		var latSum float64
		var latN int
		if _, err := art.Run(context.Background(), probes,
			gallium.WithMode(mode), gallium.WithWorkers(workers), gallium.WithScenario(),
			gallium.WithDeliveries(func(d gallium.Delivery) {
				if d.Seq == 0 || !d.Delivered {
					return
				}
				mu.Lock()
				latSum += float64(d.LatencyNs)
				latN++
				mu.Unlock()
			}),
		); err != nil {
			log.Fatal(err)
		}

		return outcome{
			label:   label,
			gbps:    st.ThroughputBps() / 1e9,
			probeUs: latSum / float64(latN) / 1000,
			fastPct: 100 * float64(st.FastPath) / float64(st.Injected),
			cycles:  st.ServerCycles,
		}
	}

	off := run("gallium (switch + 1 shard)", gallium.Offloaded, 1)
	sw4 := run("fastclick (4 shards)", gallium.Software, 4)

	fmt.Println("MazuNAT, 10 TCP connections, 500B packets, 6 Mpps offered, 10 ms")
	fmt.Printf("%-28s %10s %12s %11s %14s\n", "deployment", "Gbps", "probe(µs)", "fast path", "server cycles")
	for _, o := range []outcome{off, sw4} {
		fmt.Printf("%-28s %10.2f %12.2f %10.1f%% %14.0f\n", o.label, o.gbps, o.probeUs, o.fastPct, o.cycles)
	}
	fmt.Printf("\ncycle savings: %.1f%%  latency cut: %.1f%%\n",
		100*(sw4.cycles-off.cycles)/sw4.cycles,
		100*(sw4.probeUs-off.probeUs)/sw4.probeUs)
	fmt.Println("(the paper reports 21-79% cycle savings and ~31% latency reduction, §1)")
}

// NAT offload: run MazuNAT through the simulated testbed in both
// deployments — Gallium-offloaded (switch + one server core) and the
// software baseline on four cores — under identical iperf-style traffic,
// and compare throughput, latency, fast-path coverage, and server cycles.
// This is the paper's headline scenario (§6.3) in miniature.
//
// Run with: go run ./examples/natoffload
package main

import (
	"fmt"
	"log"

	"gallium"
	"gallium/internal/packet"
	"gallium/internal/trafficgen"
)

func main() {
	art, err := gallium.CompileBuiltin("mazunat", gallium.Options{})
	if err != nil {
		log.Fatal(err)
	}

	gen := trafficgen.IperfConfig{
		Conns: 10, PacketSize: 500, PPS: 6e6, DurationNs: 10_000_000, Seed: 7,
	}

	type outcome struct {
		label   string
		gbps    float64
		probeUs float64
		fastPct float64
		cycles  float64
	}
	run := func(label string, mode gallium.Mode, cores int) outcome {
		// Throughput phase: sustained load.
		tb, err := art.NewTestbed(gallium.TestbedConfig{
			Mode: mode, Cores: cores, Scenario: true, Flows: gen.Tuples(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := gen.Generate(func(tNs int64, pkt *packet.Packet) error {
			_, err := tb.Inject(tNs, pkt)
			return err
		}); err != nil {
			log.Fatal(err)
		}
		st := tb.Stats()

		// Latency phase: Nptcp-style probes on a fresh, idle testbed (as
		// in the paper, latency is measured without background load).
		lt, err := art.NewTestbed(gallium.TestbedConfig{
			Mode: mode, Cores: cores, Scenario: true, Flows: gen.Tuples(),
		})
		if err != nil {
			log.Fatal(err)
		}
		tup := gen.Tuples()[0]
		syn := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{Flags: packet.TCPFlagSYN})
		if _, err := lt.Inject(0, syn); err != nil {
			log.Fatal(err)
		}
		var latSum float64
		t := int64(2_000_000)
		const probes = 20
		for i := 0; i < probes; i++ {
			p := packet.BuildTCP(tup.SrcIP, tup.DstIP, tup.SrcPort, tup.DstPort, packet.TCPOptions{})
			p.PadTo(500)
			d, err := lt.Inject(t, p)
			if err != nil {
				log.Fatal(err)
			}
			latSum += float64(d.LatencyNs)
			t += 1_000_000
		}

		return outcome{
			label:   label,
			gbps:    st.ThroughputBps() / 1e9,
			probeUs: latSum / probes / 1000,
			fastPct: 100 * float64(st.FastPath) / float64(st.Injected),
			cycles:  st.ServerCycles,
		}
	}

	off := run("gallium (switch + 1 core)", gallium.Offloaded, 1)
	sw4 := run("fastclick (4 cores)", gallium.Software, 4)

	fmt.Println("MazuNAT, 10 TCP connections, 500B packets, 6 Mpps offered, 10 ms")
	fmt.Printf("%-28s %10s %12s %11s %14s\n", "deployment", "Gbps", "probe(µs)", "fast path", "server cycles")
	for _, o := range []outcome{off, sw4} {
		fmt.Printf("%-28s %10.2f %12.2f %10.1f%% %14.0f\n", o.label, o.gbps, o.probeUs, o.fastPct, o.cycles)
	}
	fmt.Printf("\ncycle savings: %.1f%%  latency cut: %.1f%%\n",
		100*(sw4.cycles-off.cycles)/sw4.cycles,
		100*(sw4.probeUs-off.probeUs)/sw4.probeUs)
	fmt.Println("(the paper reports 21-79% cycle savings and ~31% latency reduction, §1)")
}

// Cache mode: §7 of the paper sketches shrinking switch memory by keeping
// only a fraction of a table on the switch ("For any packet that the
// programmable switch does not know how to handle, the middlebox server
// handles it instead") and leaves it to future work. This repository
// implements it: cached tables hold N entries with FIFO eviction, cache
// misses punt the packet to the server's authoritative state, entries fill
// on demand (read-through), and only updates the switch might already be
// serving pay the synchronization stall.
//
// This example sweeps the MiniLB connection-cache size under skewed
// traffic and prints the memory/fast-path trade-off.
//
// Run with: go run ./examples/cachemode
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gallium"
	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
)

func main() {
	fmt.Println("MiniLB connection table: 65536 entries fully resident vs §7 cache mode")
	fmt.Println("traffic: 80% from a 20-host hot set, 20% cold tail (12000 packets)")
	fmt.Println()
	fmt.Printf("%10s %14s %11s %8s %11s\n", "cache", "switch memory", "fast path", "punts", "evictions")

	for _, entries := range []int{0, 8, 32, 128, 512, 2048} {
		var opts gallium.Options
		label := "full"
		if entries > 0 {
			opts.CacheEntries = map[string]int{"conn": entries}
			label = fmt.Sprintf("%d", entries)
		}
		art, err := gallium.Compile(middleboxes.MiniLBSource, opts)
		if err != nil {
			log.Fatal(err)
		}
		res := art.Res
		d, err := art.NewDeployment(func(st *ir.State) { middleboxes.ConfigureState("minilb", st) })
		if err != nil {
			log.Fatal(err)
		}

		rng := rand.New(rand.NewSource(9))
		const total = 12000
		fast := 0
		for i := 0; i < total; i++ {
			var src packet.IPv4Addr
			if rng.Intn(5) > 0 {
				src = packet.MakeIPv4Addr(10, 0, 0, byte(1+rng.Intn(20)))
			} else {
				src = packet.MakeIPv4Addr(10, 0, byte(1+rng.Intn(200)), byte(1+rng.Intn(250)))
			}
			p := packet.BuildTCP(src, packet.MakeIPv4Addr(9, 9, 9, 9), 1000, 80, packet.TCPOptions{})
			tr, err := d.Process(p)
			if err != nil {
				log.Fatal(err)
			}
			if tr.FastPath {
				fast++
			}
		}
		st := d.Switch.Stats()
		fmt.Printf("%10s %13dB %10.1f%% %8d %11d\n",
			label, res.Report.SwitchMemoryBytes, 100*float64(fast)/total, st.Punts, st.Evictions)
	}
	fmt.Println()
	fmt.Println("a few hundred cached entries recover nearly the full-table fast-path")
	fmt.Println("rate at a small fraction of the switch memory — the §7 trade-off")
}

// LB equivalence: differential-test the compiled L4 load balancer. The
// same randomized connection mix (SYN/data/FIN, TCP and UDP) runs through
// (a) the reference interpreter on the input program and (b) the full
// offloaded deployment — switch tables, wire-format Gallium headers,
// server partition, write-back synchronization — and every packet's fate
// and rewrite must match, ending in identical state. This is goal (1) of
// the paper (§3.1, functional equivalence) made executable.
//
// Run with: go run ./examples/lbequivalence
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gallium"
	"gallium/internal/ir"
	"gallium/internal/middleboxes"
	"gallium/internal/packet"
	"gallium/internal/serverrt"
)

func main() {
	art, err := gallium.CompileBuiltin("l4lb", gallium.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ref := serverrt.NewSoftware(art.Prog)

	setup := func(st *ir.State) { middleboxes.ConfigureState("l4lb", st) }
	setup(ref.State)
	dep, err := art.NewDeployment(setup)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2024))
	const packets = 20000
	mismatches, fast := 0, 0
	for i := 0; i < packets; i++ {
		src := packet.MakeIPv4Addr(172, 16, byte(rng.Intn(4)), byte(1+rng.Intn(40)))
		sport := uint16(5000 + rng.Intn(200))
		vip := packet.MakeIPv4Addr(10, 0, 2, 2)
		flags := packet.TCPFlagACK
		switch rng.Intn(12) {
		case 0:
			flags = packet.TCPFlagSYN
		case 1:
			flags = packet.TCPFlagFIN | packet.TCPFlagACK
		}
		var a *packet.Packet
		if rng.Intn(6) == 0 {
			a = packet.BuildUDP(src, vip, sport, 53, []byte("q"))
		} else {
			a = packet.BuildTCP(src, vip, sport, 80, packet.TCPOptions{Flags: flags})
		}
		b := a.Clone()

		rRef, err := ref.Process(a)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := dep.Process(b)
		if err != nil {
			log.Fatal(err)
		}
		if tr.FastPath {
			fast++
		}
		if rRef.Action != tr.Action || a.IP.DstIP != b.IP.DstIP {
			mismatches++
			fmt.Printf("MISMATCH pkt %d: ref=%v/%v dep=%v/%v\n", i, rRef.Action, a.IP.DstIP, tr.Action, b.IP.DstIP)
		}
	}

	fmt.Printf("ran %d packets through reference and offloaded deployment\n", packets)
	fmt.Printf("  mismatches: %d\n", mismatches)
	fmt.Printf("  fast path:  %.1f%% (established connections bypass the server)\n", 100*float64(fast)/packets)
	fmt.Printf("  states equal at end: %v\n", ref.State.Equal(dep.Server.State))
	fmt.Printf("  connection entries: server=%d switch=%d\n",
		len(dep.Server.State.Maps["conns"]), tableLen(dep))
	if mismatches == 0 && ref.State.Equal(dep.Server.State) {
		fmt.Println("PASS: partitioned deployment is functionally equivalent to the input middlebox")
	} else {
		fmt.Println("FAIL")
	}
}

func tableLen(dep *serverrt.Deployment) int {
	t, ok := dep.Switch.Table("conns")
	if !ok {
		return -1
	}
	return t.Len()
}

package gallium_test

import (
	"context"
	"sync"
	"testing"

	gallium "gallium"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/trafficgen"
)

func iperfWorkload(conns int) trafficgen.IperfConfig {
	return trafficgen.IperfConfig{
		Conns:      conns,
		PPS:        1e6,
		DurationNs: 2_000_000, // 2ms of traffic
		Seed:       42,
	}
}

// TestRunFirewallScenario is the facade quickstart path: compile a
// builtin, stream an iperf workload through the concurrent engine with
// the standard scenario, and read the report.
func TestRunFirewallScenario(t *testing.T) {
	art, err := gallium.CompileBuiltin("firewall", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep, err := art.Run(context.Background(), iperfWorkload(8),
		gallium.WithWorkers(4),
		gallium.WithScenario(),
		gallium.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Injected == 0 || rep.Stats.Delivered != rep.Stats.Injected {
		t.Fatalf("whitelisted traffic not fully delivered: %+v", rep.Stats)
	}
	// The firewall fully offloads: every packet is fast path.
	if rep.Stats.FastPath != rep.Stats.Injected {
		t.Errorf("fast path %d of %d", rep.Stats.FastPath, rep.Stats.Injected)
	}
	if rep.PPS <= 0 {
		t.Error("report has no wall-clock throughput")
	}
	if rep.Latency.Count != uint64(rep.Stats.Delivered) {
		t.Errorf("latency count %d != delivered %d", rep.Latency.Count, rep.Stats.Delivered)
	}
	snap := reg.Snapshot()
	if snap.Counters["engine.packets"] != uint64(rep.Stats.Injected) {
		t.Errorf("engine.packets = %d, want %d", snap.Counters["engine.packets"], rep.Stats.Injected)
	}
	if rep.Workers != 4 || len(rep.PerWorker) != 4 {
		t.Errorf("per-worker reporting: %d/%d", rep.Workers, len(rep.PerWorker))
	}
}

// TestRunNATScenarioShardsAllocator: WithScenario must partition mazunat's
// port allocator across shards so concurrent flows never collide.
func TestRunNATScenarioShardsAllocator(t *testing.T) {
	art, err := gallium.CompileBuiltin("mazunat", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ports := map[packet.FiveTuple]uint16{}
	rep, err := art.Run(context.Background(), iperfWorkload(12),
		gallium.WithWorkers(4),
		gallium.WithScenario(),
		gallium.WithDeliveries(func(d gallium.Delivery) {
			if !d.Delivered {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if _, ok := ports[d.Flow]; !ok {
				ports[d.Flow] = d.Pkt.TCP.SrcPort
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered == 0 || rep.Stats.CtlBatches == 0 {
		t.Fatalf("NAT run did not exercise the control plane: %+v", rep.Stats)
	}
	seen := map[uint16]bool{}
	for tup, p := range ports {
		if seen[p] {
			t.Fatalf("external port %d allocated twice (flow %v)", p, tup)
		}
		seen[p] = true
	}
	if len(ports) != 12 {
		t.Errorf("allocated for %d flows, want 12", len(ports))
	}
}

// TestRunSoftwareMode drives the unpartitioned baseline through Run.
func TestRunSoftwareMode(t *testing.T) {
	art, err := gallium.CompileBuiltin("firewall", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := art.Run(context.Background(), iperfWorkload(4),
		gallium.WithMode(gallium.Software),
		gallium.WithWorkers(2),
		gallium.WithScenario(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Delivered != rep.Stats.Injected {
		t.Fatalf("software baseline dropped traffic: %+v", rep.Stats)
	}
	if rep.Stats.SlowPath != rep.Stats.Injected {
		t.Errorf("software baseline must process every packet on the server")
	}
	if rep.Switch != nil {
		t.Error("software report carries switch stats")
	}
}

// TestRunContextCancellation: the facade threads ctx through to the
// engine.
func TestRunContextCancellation(t *testing.T) {
	art, err := gallium.CompileBuiltin("firewall", gallium.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := art.Run(ctx, iperfWorkload(4), gallium.WithScenario()); err == nil {
		t.Fatal("canceled Run succeeded")
	}
}

// Command galliumbench regenerates the paper's evaluation: every table
// and figure of §6 (Table 1, Figure 7, Table 2, Table 3, Figures 8-9) plus
// the headline summary numbers.
//
// Usage:
//
//	galliumbench                 # run everything (full-size workloads)
//	galliumbench -exp fig7       # one experiment
//	galliumbench -quick          # smaller workloads (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gallium/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, offloading, fig7, table2, table3, fig8, fig9, headline, loadsweep, ablation, reconfig, pps, flows, scale, all")
	quick := flag.Bool("quick", false, "shrink simulated durations and flow counts")
	ppsOut := flag.String("ppsout", "BENCH_pps.json", "where -exp pps writes the throughput artifact")
	checkPPS := flag.String("checkpps", "", "validate an existing BENCH_pps.json artifact and exit")
	flowsOut := flag.String("flowsout", "BENCH_flows.json", "where -exp flows writes the flow-soak artifact")
	checkFlows := flag.String("checkflows", "", "validate an existing BENCH_flows.json artifact and exit")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "where -exp scale writes the scale-out matrix artifact")
	checkScale := flag.String("checkscale", "", "validate an existing BENCH_scale.json artifact (and gate on speedup where the host allows) and exit")
	minScale := flag.Float64("minscale", 0, "with -checkpps: fail unless top-ladder pps >= minscale x 1-worker pps (loud skip on <4-CPU artifacts)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()
	if *checkFlows != "" {
		rep, err := eval.LoadFlows(*checkFlows)
		if err == nil {
			err = eval.ValidateFlows(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid\n%s", *checkFlows, eval.FormatFlows(rep))
		return
	}
	if *checkPPS != "" {
		rep, err := eval.LoadPPS(*checkPPS)
		if err == nil {
			err = eval.ValidatePPS(rep)
		}
		var skip string
		if err == nil {
			skip, err = eval.CheckScaling(rep, *minScale)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		if skip != "" {
			notice(skip)
		}
		fmt.Printf("%s: valid\n%s", *checkPPS, eval.FormatPPS(rep))
		return
	}
	if *checkScale != "" {
		rep, err := eval.LoadScale(*checkScale)
		if err == nil {
			err = eval.ValidateScale(rep)
		}
		var skip string
		if err == nil {
			skip, err = eval.CheckScaleGate(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		if skip != "" {
			notice(skip)
		}
		fmt.Printf("%s: valid\n%s", *checkScale, eval.FormatScale(rep))
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(*exp, *quick, *ppsOut, *flowsOut, *scaleOut); err != nil {
		fmt.Fprintln(os.Stderr, "galliumbench:", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "galliumbench:", err)
			os.Exit(1)
		}
	}
}

func run(exp string, quick bool, ppsOut, flowsOut, scaleOut string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("scale") {
		rep, err := eval.EngineScale(quick)
		if err != nil {
			return err
		}
		if err := eval.ValidateScale(rep); err != nil {
			return err
		}
		if skip, err := eval.CheckScaleGate(rep); err != nil {
			return err
		} else if skip != "" {
			notice(skip)
		}
		if err := eval.WriteScale(rep, scaleOut); err != nil {
			return err
		}
		fmt.Print(eval.FormatScale(rep))
		fmt.Println("wrote", scaleOut)
		ran = true
	}

	if want("pps") {
		rep, err := eval.EnginePPS(quick)
		if err != nil {
			return err
		}
		if err := eval.WritePPS(rep, ppsOut); err != nil {
			return err
		}
		fmt.Print(eval.FormatPPS(rep))
		fmt.Println("wrote", ppsOut)
		ran = true
	}

	if want("flows") {
		rep, err := eval.FlowSoak(quick)
		if err != nil {
			return err
		}
		if err := eval.ValidateFlows(rep); err != nil {
			return err
		}
		if err := eval.WriteFlows(rep, flowsOut); err != nil {
			return err
		}
		fmt.Print(eval.FormatFlows(rep))
		fmt.Println("wrote", flowsOut)
		ran = true
	}
	if want("table1") {
		rows, err := eval.Table1()
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTable1(rows))
		ran = true
	}
	if want("offloading") {
		rows, err := eval.Offloading()
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatOffloading(rows))
		ran = true
	}
	if want("fig7") {
		points, err := eval.Figure7(quick)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatFigure7(points))
		ran = true
	}
	if want("table2") {
		rows, err := eval.Table2()
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTable2(rows))
		ran = true
	}
	if want("table3") {
		fmt.Println(eval.FormatTable3(eval.Table3()))
		ran = true
	}
	if want("fig8") || want("fig9") {
		fig8, fig9, err := eval.Figures89(quick)
		if err != nil {
			return err
		}
		if want("fig8") {
			fmt.Println(eval.FormatFigure8(fig8))
		}
		if want("fig9") {
			fmt.Println(eval.FormatFigure9(fig9))
		}
		ran = true
	}
	if want("loadsweep") {
		points, err := eval.LoadSweep("mazunat", quick)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatLoadSweep(points))
		ran = true
	}
	if want("ablation") {
		txt, err := eval.Ablations()
		if err != nil {
			return err
		}
		fmt.Println(txt)
		ran = true
	}
	if want("headline") {
		h, err := eval.Headline(quick)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatHeadline(h))
		ran = true
	}
	if want("reconfig") {
		rows, err := eval.ReconfigEval(quick)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatReconfig(rows))
		for _, r := range rows {
			if !r.Accounted() {
				return fmt.Errorf("reconfig: %s lost packets (injected %d != delivered %d + drops %d)",
					r.Middlebox, r.Injected, r.Delivered, r.MBDrops+r.QueueDrops)
			}
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"table1", "offloading", "fig7", "table2", "table3", "fig8", "fig9", "headline", "loadsweep", "ablation", "reconfig", "pps", "flows", "scale", "all"}, ", "))
	}
	return nil
}

// notice surfaces a skipped gate both as a GitHub Actions annotation (so
// the run is visibly marked, not silently green) and as plain text for
// terminals.
func notice(msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::notice title=galliumbench::%s\n", msg)
	}
	fmt.Println("galliumbench:", msg)
}

// Command galliumsim runs one middlebox — or a chain of them — through
// the simulator: traffic generators, programmable switch, middlebox
// server. It prints throughput, latency, and path statistics, and can
// stay resident as a live deployment whose control plane galliumctl
// reconfigures over a unix socket.
//
// Traffic streams through the concurrent sharded engine (Artifacts.Run):
// -workers picks the shard count, and the report includes wall-clock
// throughput alongside the virtual-time numbers. -mb takes a comma-
// separated chain (firewall,mazunat,l4lb) sharing one engine pass. With
// -metrics it dumps the full observability snapshot (per-table hit/miss
// counters, server cache statistics, latency histograms) as JSON; with
// -trace N it prints the first N packets' hop traces, which switches to
// the sequential testbed (hop ordering is only meaningful
// packet-at-a-time).
//
// With -serve PATH the simulator keeps generating traffic segment after
// segment until interrupted, answering the galliumctl JSON protocol on
// the unix socket at PATH: live stats, firewall rule swaps, LB pool
// changes with draining, NAT port repartitioning — each applied to the
// running engine as one atomic visibility flip.
//
// With -listen ADDR the simulator serves real traffic instead of
// generating its own: a batched UDP front end (internal/udpio) reads
// datagrams — each one serialized Ethernet frame — decodes them into the
// engine, and echoes every delivered packet (headers rewritten by the
// middlebox) back to its sender. -send ADDR is the matching traffic
// source: it ships the standard workload's frames to a listening
// simulator and reports the echoes. The two sides share the workload
// flags, so the listener's scenario whitelist matches the sender's flows.
//
// Usage:
//
//	galliumsim [-mb mazunat | -mb firewall,mazunat,l4lb]
//	           [-mode offloaded|software] [-workers 4]
//	           [-size 500] [-pps 4e6] [-ms 10]
//	           [-metrics out.json] [-trace 5]
//	           [-serve /tmp/gallium.sock]
//	           [-listen 127.0.0.1:9000 | -send 127.0.0.1:9000]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"gallium"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/trafficgen"
	"gallium/internal/udpio"
)

func main() {
	mb := flag.String("mb", "mazunat", "middlebox, or a comma-separated chain: mazunat, l4lb, firewall, proxy, trojandetector, minilb, ipgateway, ddosdetector")
	mode := flag.String("mode", "offloaded", "deployment: offloaded or software")
	workers := flag.Int("workers", 1, "concurrent server shards (engine workers)")
	size := flag.Int("size", 500, "packet size in bytes")
	pps := flag.Float64("pps", 4e6, "offered aggregate packet rate")
	ms := flag.Int("ms", 10, "simulated duration in milliseconds (per segment with -serve)")
	cache := flag.String("cache", "", "run a table as a §7 switch cache, e.g. -cache conn=512")
	pcap := flag.String("pcap", "", "write delivered packets to this pcap file")
	metrics := flag.String("metrics", "", "write the observability snapshot as JSON to this file")
	trace := flag.Int("trace", 0, "print hop-by-hop traces for the first N packets (sequential testbed)")
	serve := flag.String("serve", "", "stay resident and answer the galliumctl protocol on this unix socket")
	listen := flag.String("listen", "", "serve real traffic: read Gallium frames from this UDP address and echo deliveries")
	send := flag.String("send", "", "ship the workload as UDP datagrams to a listening simulator and report echoes")
	flag.Parse()
	if err := run(*mb, *mode, *workers, *size, *pps, *ms, *cache, *pcap, *metrics, *trace, *serve, *listen, *send); err != nil {
		fmt.Fprintln(os.Stderr, "galliumsim:", err)
		os.Exit(1)
	}
}

func parseCache(cache string) (map[string]int, error) {
	if cache == "" {
		return nil, nil
	}
	parts := strings.SplitN(cache, "=", 2)
	if len(parts) != 2 || parts[0] == "" {
		return nil, fmt.Errorf("bad -cache value %q, want table=entries", cache)
	}
	var entries int
	if _, err := fmt.Sscanf(parts[1], "%d", &entries); err != nil {
		return nil, fmt.Errorf("bad -cache entry count %q", parts[1])
	}
	return map[string]int{parts[0]: entries}, nil
}

func run(mbList, modeStr string, workers, size int, pps float64, ms int, cache, pcapPath, metricsPath string, traceN int, servePath, listenAddr, sendAddr string) error {
	gen := trafficgen.IperfConfig{
		Conns: 10, PacketSize: size, PPS: pps,
		DurationNs: int64(ms) * 1_000_000, Seed: 7,
	}
	if sendAddr != "" {
		// Pure traffic source: no middlebox of its own.
		return runSend(gen, sendAddr)
	}

	caches, err := parseCache(cache)
	if err != nil {
		return err
	}
	names := strings.Split(mbList, ",")
	arts := make([]*gallium.Artifacts, 0, len(names))
	for _, name := range names {
		art, err := gallium.CompileBuiltin(strings.TrimSpace(name), gallium.Options{CacheEntries: caches})
		if err != nil {
			return err
		}
		arts = append(arts, art)
	}
	mode, err := gallium.ParseMode(modeStr)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if metricsPath != "" || traceN > 0 {
		reg = obs.NewRegistry()
		reg.EnableTracing(traceN)
	}

	if traceN > 0 {
		if len(arts) > 1 {
			return fmt.Errorf("-trace replays on the sequential testbed, which runs a single middlebox (got a %d-stage chain)", len(arts))
		}
		// Hop traces interleave meaninglessly under concurrency: replay
		// the workload on the sequential testbed instead.
		return runTestbed(arts[0], gen, names[0], modeStr, mode, size, pps, ms, pcapPath, metricsPath, reg, traceN)
	}

	chain, err := gallium.Chain(arts...)
	if err != nil {
		return err
	}
	if listenAddr != "" {
		if servePath != "" {
			return fmt.Errorf("-listen and -serve are separate resident modes; pick one")
		}
		return runListen(chain, gen, mbList, modeStr, mode, workers, listenAddr, reg, metricsPath)
	}
	if servePath != "" {
		return runServe(chain, gen, mbList, modeStr, mode, workers, servePath, reg, metricsPath)
	}

	type delivered struct {
		deliverNs int64
		latencyNs int64
		pkt       *packet.Packet
	}
	var mu sync.Mutex
	var outs []delivered
	rep, err := chain.Run(context.Background(), gen,
		gallium.WithMode(mode),
		gallium.WithWorkers(workers),
		gallium.WithScenario(),
		gallium.WithMetrics(reg),
		gallium.WithDeliveries(func(d gallium.Delivery) {
			if !d.Delivered {
				return
			}
			mu.Lock()
			outs = append(outs, delivered{d.DeliverNs, d.LatencyNs, d.Pkt})
			mu.Unlock()
		}),
	)
	if err != nil {
		return err
	}
	// Deliveries arrive in per-worker order; restore global time order.
	sort.Slice(outs, func(i, j int) bool { return outs[i].deliverNs < outs[j].deliverNs })

	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := packet.NewPcapWriter(f)
		for _, d := range outs {
			if err := w.WritePacket(d.deliverNs, d.pkt.Serialize()); err != nil {
				return err
			}
		}
	}

	st := rep.Stats
	fmt.Printf("middlebox %s, %s mode, %d worker(s), %dB packets, %.1f Mpps offered, %d ms\n",
		mbList, modeStr, rep.Workers, size, pps/1e6, ms)
	fmt.Printf("  injected %d  delivered %d  mb-drops %d  queue-drops %d\n",
		st.Injected, st.Delivered, st.MBDrops, st.QueueDrops)
	fmt.Printf("  throughput: %.2f Gbps virtual, %.2f Mpps wall-clock (%.1f ms wall)\n",
		st.ThroughputBps()/1e9, rep.PPS/1e6, float64(rep.WallNs)/1e6)
	if len(outs) > 0 {
		lats := make([]float64, len(outs))
		var sum float64
		for i, d := range outs {
			lats[i] = float64(d.latencyNs)
			sum += lats[i]
		}
		sort.Float64s(lats)
		pct := func(q float64) float64 { return lats[int(q*float64(len(lats)-1))] / 1000 }
		fmt.Printf("  latency: mean %.2f µs, p50 %.2f, p99 %.2f, max %.2f\n",
			sum/float64(len(lats))/1000, pct(0.50), pct(0.99), lats[len(lats)-1]/1000)
	}
	if pcapPath != "" {
		fmt.Printf("  wrote %d delivered packets to %s\n", len(outs), pcapPath)
	}
	if mode == gallium.Offloaded {
		fmt.Printf("  fast path: %d (%.2f%%)  slow path: %d\n",
			st.FastPath, 100*float64(st.FastPath)/float64(st.Injected), st.SlowPath)
		fmt.Printf("  control plane: %d ops in %d batches\n", st.CtlOps, st.CtlBatches)
		for i, sws := range rep.SwitchStages {
			label := ""
			if len(rep.SwitchStages) > 1 {
				label = fmt.Sprintf(" [%s]", names[i])
			}
			fmt.Printf("  switch tables%s: %v\n", label, sws.TableEntries)
		}
	}
	fmt.Printf("  server cycles: %.0f (%.1f cycles/pkt over slow-path packets)\n",
		st.ServerCycles, st.ServerCycles/maxf(1, float64(st.SlowPath)))

	return writeMetrics(reg, metricsPath, 0)
}

// runServe keeps the deployment live: segment after segment of generated
// traffic flows through one Session while the control server answers
// galliumctl on the unix socket. Interrupt (SIGINT/SIGTERM) drains and
// prints the final report.
func runServe(chain *gallium.Pipeline, gen trafficgen.IperfConfig, mbList, modeStr string,
	mode gallium.Mode, workers int, servePath string, reg *obs.Registry, metricsPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := chain.Open(
		gallium.WithMode(mode),
		gallium.WithWorkers(workers),
		gallium.WithScenario(),
		gallium.WithFlows(gen.Tuples()),
		gallium.WithMetrics(reg),
	)
	if err != nil {
		return err
	}
	srv, err := s.Serve(servePath)
	if err != nil {
		_, _ = s.Close()
		return err
	}
	fmt.Printf("galliumsim: serving %s (%s mode, %d worker(s)) on %s\n",
		mbList, modeStr, workers, servePath)
	fmt.Printf("galliumsim: feeding %.1f Mpps in %d ms segments until interrupted\n",
		gen.PPS/1e6, gen.DurationNs/1_000_000)

	var offset int64
	segments := 0
	for ctx.Err() == nil {
		if err := s.Feed(trafficgen.Shifted{WL: gen, OffsetNs: offset}); err != nil {
			if ctx.Err() != nil {
				break
			}
			_ = srv.Close()
			_, _ = s.Close()
			return err
		}
		offset += gen.DurationNs
		segments++
	}

	fmt.Printf("galliumsim: interrupted after %d segment(s), draining\n", segments)
	if err := srv.Close(); err != nil {
		return err
	}
	rep, err := s.Close()
	if err != nil {
		return err
	}
	st := rep.Stats
	fmt.Printf("  injected %d  delivered %d  mb-drops %d  queue-drops %d  reconfigs %d\n",
		st.Injected, st.Delivered, st.MBDrops, st.QueueDrops, rep.Reconfigs)
	fmt.Printf("  throughput: %.2f Gbps virtual, %.2f Mpps wall-clock\n",
		st.ThroughputBps()/1e9, rep.PPS/1e6)
	if mode == gallium.Offloaded {
		fmt.Printf("  fast path: %d  slow path: %d  control plane: %d ops in %d batches\n",
			st.FastPath, st.SlowPath, st.CtlOps, st.CtlBatches)
	}
	return writeMetrics(reg, metricsPath, 0)
}

// runListen keeps the deployment live behind a batched UDP front end:
// every datagram is one Gallium frame, every delivery echoes back to its
// sender with the middlebox's rewrites applied. Interrupt drains and
// prints the final report.
func runListen(chain *gallium.Pipeline, gen trafficgen.IperfConfig, mbList, modeStr string,
	mode gallium.Mode, workers int, addr string, reg *obs.Registry, metricsPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fe, err := udpio.Listen(udpio.Config{Addr: addr})
	if err != nil {
		return err
	}
	defer fe.Close()
	s, err := chain.Open(
		gallium.WithMode(mode),
		gallium.WithWorkers(workers),
		gallium.WithScenario(),
		gallium.WithFlows(gen.Tuples()),
		gallium.WithMetrics(reg),
		gallium.WithDeliveries(fe.Deliver),
	)
	if err != nil {
		return err
	}
	fmt.Printf("galliumsim: %s (%s mode, %d worker(s)) listening on udp://%s\n",
		mbList, modeStr, workers, fe.Addr())
	fmt.Printf("galliumsim: feed it with: galliumsim -send %s -size %d -pps %g -ms %d\n",
		fe.Addr(), gen.PacketSize, gen.PPS, gen.DurationNs/1_000_000)

	if err := fe.Serve(ctx, s); err != nil && !errors.Is(err, context.Canceled) {
		_, _ = s.Close()
		return err
	}
	fmt.Println("galliumsim: interrupted, draining")
	rep, err := s.Close()
	if err != nil {
		return err
	}
	st := fe.Stats()
	fmt.Printf("  udp: rx %d datagrams in %d batches, tx %d in %d, decode-errors %d\n",
		st.RxDatagrams, st.RxBatches, st.TxDatagrams, st.TxBatches, st.DecodeErrors)
	es := rep.Stats
	fmt.Printf("  engine: injected %d  delivered %d  mb-drops %d  queue-drops %d  reconfigs %d\n",
		es.Injected, es.Delivered, es.MBDrops, es.QueueDrops, rep.Reconfigs)
	if mode == gallium.Offloaded {
		fmt.Printf("  fast path: %d  slow path: %d  control plane: %d ops in %d batches\n",
			es.FastPath, es.SlowPath, es.CtlOps, es.CtlBatches)
	}
	return writeMetrics(reg, metricsPath, 0)
}

// runSend is the traffic side of -listen: serialize the workload, ship it
// over UDP in sendmmsg-style batches, and report the echoes.
func runSend(gen trafficgen.IperfConfig, addr string) error {
	var frames [][]byte
	err := gen.Generate(func(_ int64, pkt *packet.Packet) error {
		frames = append(frames, pkt.Serialize())
		return nil
	})
	if err != nil {
		return err
	}
	c, err := udpio.Dial(addr, udpio.Config{})
	if err != nil {
		return err
	}
	defer c.Close()
	// Receive concurrently with sending, or early echoes overflow the
	// client's socket buffer while the tail of the workload ships.
	type recvResult struct {
		echoes [][]byte
		err    error
	}
	rch := make(chan recvResult, 1)
	start := time.Now()
	go func() {
		e, err := c.Recv(len(frames), 5*time.Second)
		rch <- recvResult{e, err}
	}()
	if err := c.Send(frames); err != nil {
		return err
	}
	r := <-rch
	if r.err != nil {
		return r.err
	}
	echoes := r.echoes
	wall := time.Since(start)
	fmt.Printf("galliumsim: sent %d datagrams to %s, received %d echoes (%.1f%%) in %.1f ms (%.3f Mpps round-trip)\n",
		len(frames), addr, len(echoes), 100*float64(len(echoes))/maxf(1, float64(len(frames))),
		float64(wall.Nanoseconds())/1e6, float64(len(echoes))/wall.Seconds()/1e6)
	return nil
}

// runTestbed is the -trace escape hatch: the sequential, packet-at-a-time
// testbed whose hop traces are globally ordered.
func runTestbed(art *gallium.Artifacts, gen trafficgen.IperfConfig, name, modeStr string,
	mode gallium.Mode, size int, pps float64, ms int, pcapPath, metricsPath string,
	reg *obs.Registry, traceN int) error {
	tb, err := art.NewTestbed(gallium.TestbedConfig{
		Mode: mode, Cores: 1, Scenario: true, Flows: gen.Tuples(), Metrics: reg,
	})
	if err != nil {
		return err
	}
	var pcapW *packet.PcapWriter
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcapW = packet.NewPcapWriter(f)
	}
	var lats []float64
	err = gen.Generate(func(tNs int64, pkt *packet.Packet) error {
		d, err := tb.Inject(tNs, pkt)
		if err != nil {
			return err
		}
		if d.Delivered {
			lats = append(lats, float64(d.LatencyNs))
			if pcapW != nil {
				if err := pcapW.WritePacket(d.DeliverNs, pkt.Serialize()); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st := tb.Stats()
	fmt.Printf("middlebox %s, %s mode, sequential testbed (-trace), %dB packets, %.1f Mpps offered, %d ms\n",
		name, modeStr, size, pps/1e6, ms)
	fmt.Printf("  injected %d  delivered %d  mb-drops %d  queue-drops %d\n",
		st.Injected, st.Delivered, st.MBDrops, st.QueueDrops)
	fmt.Printf("  throughput: %.2f Gbps\n", st.ThroughputBps()/1e9)
	if len(lats) > 0 {
		sort.Float64s(lats)
		var sum float64
		for _, v := range lats {
			sum += v
		}
		pct := func(q float64) float64 { return lats[int(q*float64(len(lats)-1))] / 1000 }
		fmt.Printf("  latency: mean %.2f µs, p50 %.2f, p99 %.2f, max %.2f\n",
			sum/float64(len(lats))/1000, pct(0.50), pct(0.99), lats[len(lats)-1]/1000)
	}
	if mode == gallium.Offloaded {
		fmt.Printf("  fast path: %d (%.2f%%)  slow path: %d\n",
			st.FastPath, 100*float64(st.FastPath)/float64(st.Injected), st.SlowPath)
		if sws, ok := tb.SwitchStats(); ok {
			fmt.Printf("  switch tables: %v\n", sws.TableEntries)
		}
	}
	return writeMetrics(reg, metricsPath, traceN)
}

func writeMetrics(reg *obs.Registry, metricsPath string, traceN int) error {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	if traceN > 0 {
		fmt.Printf("\nhop traces (first %d packets):\n", len(snap.Traces))
		for _, tr := range snap.Traces {
			fmt.Print(tr.Format())
		}
	}
	if metricsPath != "" {
		data, err := snap.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d counters, %d histograms, %d traces to %s\n",
			len(snap.Counters), len(snap.Histograms), len(snap.Traces), metricsPath)
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Command galliumsim runs one middlebox through the simulated testbed —
// traffic generators, programmable switch, middlebox server — and prints
// throughput, latency, and path statistics. It is the interactive
// counterpart of the benchmark harness: one scenario, visible numbers.
//
// With -metrics it dumps the full observability snapshot (per-table
// hit/miss counters, server cache statistics, latency histograms with
// p50/p95/p99) as JSON; with -trace N it prints the first N packets' hop
// traces.
//
// Usage:
//
//	galliumsim [-mb mazunat] [-mode offloaded|software] [-cores 1]
//	           [-size 500] [-pps 4e6] [-ms 10]
//	           [-metrics out.json] [-trace 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gallium"
	"gallium/internal/obs"
	"gallium/internal/packet"
	"gallium/internal/trafficgen"
)

func main() {
	mb := flag.String("mb", "mazunat", "middlebox: mazunat, l4lb, firewall, proxy, trojandetector, minilb, ipgateway, ddosdetector")
	mode := flag.String("mode", "offloaded", "deployment: offloaded or software")
	cores := flag.Int("cores", 1, "middlebox server cores")
	size := flag.Int("size", 500, "packet size in bytes")
	pps := flag.Float64("pps", 4e6, "offered aggregate packet rate")
	ms := flag.Int("ms", 10, "simulated duration in milliseconds")
	cache := flag.String("cache", "", "run a table as a §7 switch cache, e.g. -cache conn=512")
	pcap := flag.String("pcap", "", "write delivered packets to this pcap file")
	metrics := flag.String("metrics", "", "write the observability snapshot as JSON to this file")
	trace := flag.Int("trace", 0, "print hop-by-hop traces for the first N packets")
	flag.Parse()
	if err := run(*mb, *mode, *cores, *size, *pps, *ms, *cache, *pcap, *metrics, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "galliumsim:", err)
		os.Exit(1)
	}
}

func parseCache(cache string) (map[string]int, error) {
	if cache == "" {
		return nil, nil
	}
	parts := strings.SplitN(cache, "=", 2)
	if len(parts) != 2 || parts[0] == "" {
		return nil, fmt.Errorf("bad -cache value %q, want table=entries", cache)
	}
	var entries int
	if _, err := fmt.Sscanf(parts[1], "%d", &entries); err != nil {
		return nil, fmt.Errorf("bad -cache entry count %q", parts[1])
	}
	return map[string]int{parts[0]: entries}, nil
}

func run(name, modeStr string, cores, size int, pps float64, ms int, cache, pcapPath, metricsPath string, traceN int) error {
	caches, err := parseCache(cache)
	if err != nil {
		return err
	}
	art, err := gallium.CompileBuiltin(name, gallium.Options{CacheEntries: caches})
	if err != nil {
		return err
	}
	mode, err := gallium.ParseMode(modeStr)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if metricsPath != "" || traceN > 0 {
		reg = obs.NewRegistry()
		reg.EnableTracing(traceN)
	}

	gen := trafficgen.IperfConfig{
		Conns: 10, PacketSize: size, PPS: pps,
		DurationNs: int64(ms) * 1_000_000, Seed: 7,
	}
	tb, err := art.NewTestbed(gallium.TestbedConfig{
		Mode: mode, Cores: cores, Scenario: true, Flows: gen.Tuples(), Metrics: reg,
	})
	if err != nil {
		return err
	}

	var pcapW *packet.PcapWriter
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcapW = packet.NewPcapWriter(f)
	}

	var lats []float64
	err = gen.Generate(func(tNs int64, pkt *packet.Packet) error {
		d, err := tb.Inject(tNs, pkt)
		if err != nil {
			return err
		}
		if d.Delivered {
			lats = append(lats, float64(d.LatencyNs))
			if pcapW != nil {
				if err := pcapW.WritePacket(d.DeliverNs, pkt.Serialize()); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	st := tb.Stats()
	fmt.Printf("middlebox %s, %s mode, %d core(s), %dB packets, %.1f Mpps offered, %d ms\n",
		name, modeStr, cores, size, pps/1e6, ms)
	fmt.Printf("  injected %d  delivered %d  mb-drops %d  queue-drops %d\n",
		st.Injected, st.Delivered, st.MBDrops, st.QueueDrops)
	fmt.Printf("  throughput: %.2f Gbps\n", st.ThroughputBps()/1e9)
	if len(lats) > 0 {
		sort.Float64s(lats)
		var sum float64
		for _, v := range lats {
			sum += v
		}
		pct := func(q float64) float64 { return lats[int(q*float64(len(lats)-1))] / 1000 }
		fmt.Printf("  latency: mean %.2f µs, p50 %.2f, p99 %.2f, max %.2f\n",
			sum/float64(len(lats))/1000, pct(0.50), pct(0.99), lats[len(lats)-1]/1000)
	}
	if pcapPath != "" {
		fmt.Printf("  wrote %d delivered packets to %s\n", len(lats), pcapPath)
	}
	if mode == gallium.Offloaded {
		fmt.Printf("  fast path: %d (%.2f%%)  slow path: %d\n",
			st.FastPath, 100*float64(st.FastPath)/float64(st.Injected), st.SlowPath)
		fmt.Printf("  control plane: %d ops in %d batches\n", st.CtlOps, st.CtlBatches)
		if sws, ok := tb.SwitchStats(); ok {
			fmt.Printf("  switch tables: %v\n", sws.TableEntries)
		}
	}
	fmt.Printf("  server cycles: %.0f (%.1f cycles/pkt over slow-path packets)\n",
		st.ServerCycles, st.ServerCycles/maxf(1, float64(st.SlowPath)))

	if reg != nil {
		snap := reg.Snapshot()
		if traceN > 0 {
			fmt.Printf("\nhop traces (first %d packets):\n", len(snap.Traces))
			for _, tr := range snap.Traces {
				fmt.Print(tr.Format())
			}
		}
		if metricsPath != "" {
			data, err := snap.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(metricsPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("\nwrote %d counters, %d histograms, %d traces to %s\n",
				len(snap.Counters), len(snap.Histograms), len(snap.Traces), metricsPath)
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

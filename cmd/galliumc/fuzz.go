package main

import (
	"fmt"
	"os"
	"time"

	"gallium/internal/difftest"
)

// runFuzz executes `galliumc -fuzz n`: the differential equivalence
// fuzzer over seeds fuzzseed..fuzzseed+n-1. Every finding is minimized
// and, when -fuzzout is set, written as a self-contained .mc/.trace
// corpus pair. Exit status is the number of findings (clamped for the
// shell), so CI can gate on it directly.
func runFuzz(n int, seed uint64, budget time.Duration, outDir string) int {
	findings := difftest.Fuzz(difftest.FuzzOptions{
		Start:  seed,
		N:      n,
		Budget: budget,
		OutDir: outDir,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if len(findings) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "galliumc: -fuzz: %d divergent case(s)\n", len(findings))
	return 1
}

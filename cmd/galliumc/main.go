// Command galliumc is the Gallium compiler CLI: it takes a middlebox
// written in MiniClick (a file, or one of the built-in evaluation
// middleboxes by name) and produces the two deployable artifacts — the P4
// program for the switch and the C++-style server program — plus a
// partitioning report.
//
// Usage:
//
//	galliumc [-o outdir] [-print pre|srv|post|p4|server|report|deps|all] <file.mc | builtin-name>
//	galliumc firewall mazunat l4lb        # chained-pipeline report
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gallium"
	"gallium/internal/analysis"
)

// printValues are the accepted -print selections.
var printValues = []string{"report", "p4", "server", "pre", "srv", "post", "deps", "all"}

func main() {
	outDir := flag.String("o", "", "write artifacts into this directory")
	show := flag.String("print", "report", "what to print: "+strings.Join(printValues, ", "))
	depth := flag.Int("depth", 0, "override the switch pipeline-depth constraint")
	transfer := flag.Int("transfer", 0, "override the transfer-header budget in bytes")
	memory := flag.Int("memory", 0, "override switch memory in bytes")
	weighted := flag.Bool("weighted", false, "use the §7 weighted offloading objective")
	drmt := flag.Bool("drmt", false, "target a disaggregated-RMT switch (relax rules 3/4)")
	vet := flag.Bool("vet", false, "run the static-analysis layer (middlebox lint + partition verifier); errors fail the build")
	werror := flag.Bool("Werror", false, "treat analysis warnings as errors (implies -vet)")
	explain := flag.Bool("explain", false, "print each diagnostic's derivation chain (implies -vet)")
	jsonOut := flag.Bool("json", false, "emit the analysis report as JSON on stdout and nothing else (implies -vet; -print/-o output is suppressed)")
	fuzzN := flag.Int("fuzz", 0, "run the differential equivalence fuzzer over N generated cases and exit")
	fuzzSeed := flag.Uint64("fuzzseed", 0, "first seed for -fuzz (failing seeds replay with -fuzz 1 -fuzzseed N)")
	fuzzTime := flag.Duration("fuzztime", 0, "wall-clock budget for -fuzz (0 = unbounded)")
	fuzzOut := flag.String("fuzzout", "", "write shrunk corpus cases for -fuzz findings into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: galliumc [-o outdir] [-print what] <file.mc | %s>\n",
			strings.Join(gallium.Builtins(), " | "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *fuzzN > 0 {
		os.Exit(runFuzz(*fuzzN, *fuzzSeed, *fuzzTime, *fuzzOut))
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if !validPrint(*show) {
		fmt.Fprintf(os.Stderr, "galliumc: unknown -print value %q (want one of: %s)\n",
			*show, strings.Join(printValues, ", "))
		os.Exit(2)
	}
	opts := gallium.Options{
		WeightedObjective: *weighted,
		DisaggregatedRMT:  *drmt,
		Verify:            *vet || *werror || *explain || *jsonOut,
	}
	dopts := diagOpts{werror: *werror, explain: *explain, json: *jsonOut}
	// Overrides apply only when the flag was given on the command line, so
	// an explicit `-depth 0` reaches the partitioner (and is rejected
	// there) instead of silently meaning "use the default".
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "depth":
			opts.PipelineDepth = gallium.Int(*depth)
		case "transfer":
			opts.TransferBytes = gallium.Int(*transfer)
		case "memory":
			opts.SwitchMemoryBytes = gallium.Int(*memory)
		}
	})
	var err error
	if flag.NArg() > 1 {
		err = runChain(flag.Args(), *outDir, *show, opts, dopts)
	} else {
		err = run(flag.Arg(0), *outDir, *show, opts, dopts)
	}
	if err != nil {
		// With -json, a verification failure still produces the full
		// machine-readable report on stdout before the nonzero exit.
		var ve *gallium.VerifyError
		if dopts.json && errors.As(err, &ve) {
			if out, jerr := ve.Diagnostics.JSON(ve.Name); jerr == nil {
				fmt.Println(string(out))
			}
		}
		fmt.Fprintln(os.Stderr, "galliumc:", err)
		os.Exit(1)
	}
}

// diagOpts carries the diagnostic-presentation flags through run/runChain.
type diagOpts struct {
	werror, explain, json bool
}

// reportDiagnostics renders one compiled middlebox's analysis report per
// the presentation flags and enforces -Werror. JSON goes to stdout (the
// machine surface); human renderings go to stderr like compiler output.
func reportDiagnostics(art *gallium.Artifacts, d diagOpts) error {
	if d.json {
		out, err := art.Diagnostics.JSON(art.Name)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else if len(art.Diagnostics) > 0 {
		if d.explain {
			fmt.Fprint(os.Stderr, art.Diagnostics.RenderExplain(art.Name))
		} else {
			fmt.Fprint(os.Stderr, art.Diagnostics.Render(art.Name))
		}
	}
	if n := art.Diagnostics.CountAtLeast(analysis.Warning); d.werror && n > 0 {
		return fmt.Errorf("%s: -Werror: %d warning(s)", art.Name, n)
	}
	return nil
}

// runChain compiles several middleboxes as one deployment pipeline:
// per-stage reports plus the combined resource footprint the chained
// switch program would occupy. Only -print report (and -o, which writes
// each stage's artifacts) make sense for a chain.
func runChain(targets []string, outDir, show string, opts gallium.Options, dopts diagOpts) error {
	if show != "report" {
		return fmt.Errorf("-print %s prints one program; chains support only -print report", show)
	}
	var arts []*gallium.Artifacts
	for _, target := range targets {
		art, err := gallium.CompileTarget(target, opts)
		if err != nil {
			return err
		}
		if err := reportDiagnostics(art, dopts); err != nil {
			return err
		}
		arts = append(arts, art)
	}
	if _, err := gallium.Chain(arts...); err != nil {
		return err
	}
	var memory, depth, stmts, offloaded int
	fmt.Printf("pipeline: %d stages\n", len(arts))
	for i, art := range arts {
		r := art.Res.Report
		fmt.Printf("[stage %d] %s", i, report(art))
		memory += r.SwitchMemoryBytes
		depth += r.DepthPre + r.DepthPost
		stmts += r.NumStmts
		offloaded += r.NumPre + r.NumPost
	}
	fmt.Printf("combined: %d statements (%d offloaded), %d bytes switch memory, %d pipeline stages deep\n",
		stmts, offloaded, memory, depth)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		n := 0
		for _, art := range arts {
			files := map[string]string{
				art.Name + ".p4":         art.P4.Source,
				art.Name + "_server.cpp": art.Server.Source,
				art.Name + "_report.txt": report(art),
			}
			for name, content := range files {
				if err := os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644); err != nil {
					return err
				}
				n++
			}
		}
		fmt.Printf("wrote %d artifacts to %s\n", n, outDir)
	}
	return nil
}

func validPrint(show string) bool {
	for _, v := range printValues {
		if show == v {
			return true
		}
	}
	return false
}

func run(target, outDir, show string, opts gallium.Options, dopts diagOpts) error {
	art, err := gallium.CompileTarget(target, opts)
	if err != nil {
		return err
	}
	// Human diagnostics go to stderr so stdout stays machine-clean for
	// -print output; a failing -vet surfaces as a *gallium.VerifyError
	// above. -json instead owns stdout with the report.
	if err := reportDiagnostics(art, dopts); err != nil {
		return err
	}
	if dopts.json {
		return nil
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		files := map[string]string{
			art.Name + ".p4":         art.P4.Source,
			art.Name + "_server.cpp": art.Server.Source,
			art.Name + "_report.txt": report(art),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d artifacts to %s\n", len(files), outDir)
	}

	res := art.Res
	switch show {
	case "report":
		fmt.Print(report(art))
	case "p4":
		fmt.Print(art.P4.Source)
	case "server":
		fmt.Print(art.Server.Source)
	case "pre":
		fmt.Print(res.PreFn.String())
	case "srv":
		fmt.Print(res.SrvFn.String())
	case "post":
		fmt.Print(res.PostFn.String())
	case "deps":
		// The program dependence graph with partition clustering — the
		// paper's Figure 3, as Graphviz.
		names := make([]string, len(res.Assign))
		for i, a := range res.Assign {
			names[i] = a.String()
		}
		fmt.Print(res.Graph.Dot(names))
	case "all":
		fmt.Print(report(art))
		fmt.Println("---- P4 ----")
		fmt.Print(art.P4.Source)
		fmt.Println("---- server ----")
		fmt.Print(art.Server.Source)
	}
	return nil
}

func report(art *gallium.Artifacts) string {
	var b strings.Builder
	res := art.Res
	r := res.Report
	fmt.Fprintf(&b, "middlebox %s\n", art.Name)
	fmt.Fprintf(&b, "  statements: %d total = %d pre + %d server + %d post (%.0f%% offloaded)\n",
		r.NumStmts, r.NumPre, r.NumSrv, r.NumPost, 100*r.OffloadFraction())
	fmt.Fprintf(&b, "  switch memory: %d bytes across %d globals %v\n",
		r.SwitchMemoryBytes, len(res.OffloadedGlobals), res.OffloadedGlobals)
	fmt.Fprintf(&b, "  pipeline depth: pre=%d post=%d (budget %d)\n",
		r.DepthPre, r.DepthPost, res.Cons.PipelineDepth)
	fmt.Fprintf(&b, "  per-packet metadata: %d bits (budget %d)\n",
		r.MaxMetadataBits, res.Cons.MetadataBytes*8)
	fmt.Fprintf(&b, "  transfer headers: pre→server %s (%dB), server→post %s (%dB)\n",
		res.FormatA, r.TransferABytes, res.FormatB, r.TransferBBytes)
	fmt.Fprintf(&b, "  generated: %d lines of P4, %d lines of server C++\n",
		art.P4.LinesOfCode(), art.Server.LinesOfCode())
	return b.String()
}

// Command galliumc is the Gallium compiler CLI: it takes a middlebox
// written in MiniClick (a file, or one of the built-in evaluation
// middleboxes by name) and produces the two deployable artifacts — the P4
// program for the switch and the C++-style server program — plus a
// partitioning report.
//
// Usage:
//
//	galliumc [-o outdir] [-print pre|srv|post|p4|server|report] <file.mc | builtin-name>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gallium/internal/lang"
	"gallium/internal/middleboxes"
	"gallium/internal/p4"
	"gallium/internal/partition"
	"gallium/internal/servergen"
)

func main() {
	outDir := flag.String("o", "", "write artifacts into this directory")
	show := flag.String("print", "report", "what to print: report, p4, server, pre, srv, post, deps, all")
	depth := flag.Int("depth", 0, "override the switch pipeline-depth constraint")
	transfer := flag.Int("transfer", 0, "override the transfer-header budget in bytes")
	memory := flag.Int("memory", 0, "override switch memory in bytes")
	weighted := flag.Bool("weighted", false, "use the §7 weighted offloading objective")
	drmt := flag.Bool("drmt", false, "target a disaggregated-RMT switch (relax rules 3/4)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: galliumc [-o outdir] [-print what] <file.mc | %s>\n",
			strings.Join(builtinNames(), " | "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cons := partition.DefaultConstraints()
	if *depth > 0 {
		cons.PipelineDepth = *depth
	}
	if *transfer > 0 {
		cons.TransferBytes = *transfer
	}
	if *memory > 0 {
		cons.SwitchMemoryBytes = *memory
	}
	cons.WeightedObjective = *weighted
	cons.DisaggregatedRMT = *drmt
	if err := run(flag.Arg(0), *outDir, *show, cons); err != nil {
		fmt.Fprintln(os.Stderr, "galliumc:", err)
		os.Exit(1)
	}
}

func builtinNames() []string {
	names := []string{"minilb", "ipgateway"}
	for _, s := range middleboxes.All() {
		names = append(names, s.Name)
	}
	return names
}

func run(target, outDir, show string, cons partition.Constraints) error {
	src, err := loadSource(target)
	if err != nil {
		return err
	}
	prog, err := lang.Compile(src)
	if err != nil {
		return err
	}
	res, err := partition.Partition(prog, cons)
	if err != nil {
		return err
	}
	p4prog, err := p4.Generate(res)
	if err != nil {
		return err
	}
	srv := servergen.Generate(res)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		files := map[string]string{
			prog.Name + ".p4":         p4prog.Source,
			prog.Name + "_server.cpp": srv.Source,
			prog.Name + "_report.txt": report(res, p4prog, srv),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d artifacts to %s\n", len(files), outDir)
	}

	switch show {
	case "report":
		fmt.Print(report(res, p4prog, srv))
	case "p4":
		fmt.Print(p4prog.Source)
	case "server":
		fmt.Print(srv.Source)
	case "pre":
		fmt.Print(res.PreFn.String())
	case "srv":
		fmt.Print(res.SrvFn.String())
	case "post":
		fmt.Print(res.PostFn.String())
	case "deps":
		// The program dependence graph with partition clustering — the
		// paper's Figure 3, as Graphviz.
		names := make([]string, len(res.Assign))
		for i, a := range res.Assign {
			names[i] = a.String()
		}
		fmt.Print(res.Graph.Dot(names))
	case "all":
		fmt.Print(report(res, p4prog, srv))
		fmt.Println("---- P4 ----")
		fmt.Print(p4prog.Source)
		fmt.Println("---- server ----")
		fmt.Print(srv.Source)
	default:
		return fmt.Errorf("unknown -print value %q", show)
	}
	return nil
}

func loadSource(target string) (string, error) {
	if strings.HasSuffix(target, ".mc") {
		data, err := os.ReadFile(target)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	spec, err := middleboxes.Lookup(target)
	if err != nil {
		return "", fmt.Errorf("%q is neither a .mc file nor a built-in middlebox", target)
	}
	return spec.Source, nil
}

func report(res *partition.Result, p4prog *p4.Program, srv *servergen.Program) string {
	var b strings.Builder
	r := res.Report
	fmt.Fprintf(&b, "middlebox %s\n", res.Prog.Name)
	fmt.Fprintf(&b, "  statements: %d total = %d pre + %d server + %d post (%.0f%% offloaded)\n",
		r.NumStmts, r.NumPre, r.NumSrv, r.NumPost, 100*r.OffloadFraction())
	fmt.Fprintf(&b, "  switch memory: %d bytes across %d globals %v\n",
		r.SwitchMemoryBytes, len(res.OffloadedGlobals), res.OffloadedGlobals)
	fmt.Fprintf(&b, "  pipeline depth: pre=%d post=%d (budget %d)\n",
		r.DepthPre, r.DepthPost, res.Cons.PipelineDepth)
	fmt.Fprintf(&b, "  per-packet metadata: %d bits (budget %d)\n",
		r.MaxMetadataBits, res.Cons.MetadataBytes*8)
	fmt.Fprintf(&b, "  transfer headers: pre→server %s (%dB), server→post %s (%dB)\n",
		res.FormatA, r.TransferABytes, res.FormatB, r.TransferBBytes)
	fmt.Fprintf(&b, "  generated: %d lines of P4, %d lines of server C++\n",
		p4prog.LinesOfCode(), srv.LinesOfCode())
	return b.String()
}

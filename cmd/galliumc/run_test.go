package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gallium"
)

// These tests drive the CLI's internal entry points in-process (the
// exec-based tests in vet_test.go pin exit codes but produce no
// coverage of this package), one per surface: single-target runs across
// every -print mode, artifact writing, chained pipelines, diagnostics
// presentation, and the fuzz entry point.

func TestRunPrintModes(t *testing.T) {
	for _, show := range printValues {
		if show == "deps" || show == "all" {
			continue // covered below; "all" just concatenates
		}
		if err := run("firewall", "", show, gallium.Options{}, diagOpts{}); err != nil {
			t.Errorf("run(-print %s): %v", show, err)
		}
	}
	if err := run("firewall", "", "deps", gallium.Options{}, diagOpts{}); err != nil {
		t.Errorf("run(-print deps): %v", err)
	}
	if err := run("firewall", "", "all", gallium.Options{}, diagOpts{}); err != nil {
		t.Errorf("run(-print all): %v", err)
	}
	if !validPrint("report") || validPrint("bogus") {
		t.Error("validPrint misclassifies")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("firewall", dir, "report", gallium.Options{}, diagOpts{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"firewall.p4", "firewall_server.cpp", "firewall_report.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s not written: %v", name, err)
		}
	}
}

func TestRunVetPresentation(t *testing.T) {
	opts := gallium.Options{Verify: true}
	if err := run("firewall", "", "report", opts, diagOpts{}); err != nil {
		t.Errorf("vet render: %v", err)
	}
	if err := run("firewall", "", "report", opts, diagOpts{explain: true}); err != nil {
		t.Errorf("vet explain: %v", err)
	}
	if err := run("firewall", "", "report", opts, diagOpts{json: true}); err != nil {
		t.Errorf("vet json: %v", err)
	}
	// The firewall's report is info-only, so even -Werror passes.
	if err := run("firewall", "", "report", opts, diagOpts{werror: true}); err != nil {
		t.Errorf("vet werror on clean target: %v", err)
	}
}

func TestRunWerrorFailsOnWarnings(t *testing.T) {
	f := filepath.Join(t.TempDir(), "warn.mc")
	if err := os.WriteFile(f, []byte(vetSource), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(f, "", "report", gallium.Options{Verify: true}, diagOpts{werror: true})
	if err == nil || !strings.Contains(err.Error(), "-Werror") {
		t.Fatalf("want -Werror failure, got %v", err)
	}
}

func TestRunChainReport(t *testing.T) {
	dir := t.TempDir()
	if err := runChain([]string{"firewall", "l4lb"}, dir, "report", gallium.Options{}, diagOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "l4lb.p4")); err != nil {
		t.Errorf("chain artifact missing: %v", err)
	}
	if err := runChain([]string{"firewall", "l4lb"}, "", "p4", gallium.Options{}, diagOpts{}); err == nil {
		t.Error("chain with -print p4 should be rejected")
	}
}

func TestRunUnknownTarget(t *testing.T) {
	if err := run("no-such-box", "", "report", gallium.Options{}, diagOpts{}); err == nil {
		t.Error("unknown target did not error")
	}
}

func TestRunFuzzClean(t *testing.T) {
	if code := runFuzz(3, 0, 0, ""); code != 0 {
		t.Fatalf("clean fuzz range exited %d", code)
	}
}

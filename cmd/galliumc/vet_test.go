package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the galliumc binary once per test binary and returns
// its path. Tests then exercise real flag parsing and exit codes.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "galliumc")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// vetSource carries two source-reachable warnings (a map value
// consumed without testing the found flag, an unused global) plus the
// info-severity flow-affinity certificate with its derivation notes.
// interval/width-truncation is unreachable from well-typed MiniClick —
// every header store's register already has the field's exact width —
// so the CLI contract for it is pinned by the IR-level mutation tests.
const vetSource = `middlebox vetcase {
    map<u32, u32, u16, u16, u8 -> u16> flows(max = 1024);
    global u32 unused;
    proc process(pkt p) {
        let r = flows.find(p.ip.saddr, p.ip.daddr, p.l4.sport, p.l4.dport, p.ip.proto);
        p.ip.id = r.v0;
        send(p);
    }
}
`

func writeSource(t *testing.T, src string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("command did not run: %v", err)
	}
	return ee.ExitCode()
}

// TestVetExitCodes pins the CLI contract: warnings alone exit 0 under
// -vet, exit 1 under -Werror, and a clean builtin is silent on stderr
// apart from its info-severity certificate.
func TestVetExitCodes(t *testing.T) {
	bin := buildCLI(t)
	src := writeSource(t, vetSource)

	out, err := exec.Command(bin, "-vet", src).CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("-vet with warnings exited %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(string(out), "lint/unchecked-map-miss") {
		t.Fatalf("-vet output missing lint/unchecked-map-miss:\n%s", out)
	}

	out, err = exec.Command(bin, "-Werror", src).CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("-Werror with warnings exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(string(out), "-Werror") {
		t.Fatalf("-Werror exit message missing:\n%s", out)
	}

	out, err = exec.Command(bin, "-vet", "firewall").CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("-vet firewall exited %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(string(out), "affinity/certificate") {
		t.Fatalf("-vet firewall missing its affinity certificate:\n%s", out)
	}
}

// TestVetExplain: -explain must append the derivation chain under each
// diagnostic as indented note lines.
func TestVetExplain(t *testing.T) {
	bin := buildCLI(t)
	src := writeSource(t, vetSource)
	out, err := exec.Command(bin, "-vet", "-explain", src).CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("-explain exited %d, want 0:\n%s", code, out)
	}
	s := string(out)
	if !strings.Contains(s, "    note: ") {
		t.Fatalf("-explain output has no note lines:\n%s", s)
	}
	if !strings.Contains(s, "identity of ip.saddr") {
		t.Fatalf("-explain output missing the affinity derivation chain:\n%s", s)
	}
}

// vetReport mirrors the stable JSON schema of Diagnostics.JSON.
type vetReport struct {
	Program     string `json:"program"`
	Errors      int    `json:"errors"`
	Warnings    int    `json:"warnings"`
	Diagnostics []struct {
		Check    string   `json:"check"`
		Severity string   `json:"severity"`
		Message  string   `json:"message"`
		Fn       string   `json:"fn"`
		Stmt     int      `json:"stmt"`
		Line     int      `json:"line"`
		Notes    []string `json:"notes"`
	} `json:"diagnostics"`
}

// TestVetJSONSchema: -json owns stdout with the machine-readable report;
// the new check IDs appear with severity and 1-based source lines.
func TestVetJSONSchema(t *testing.T) {
	bin := buildCLI(t)
	src := writeSource(t, vetSource)
	cmd := exec.Command(bin, "-json", src)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("-json exited nonzero: %v\n%s", err, stderr.String())
	}
	var rep vetReport
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("stdout is not the JSON report: %v\n%s", err, stdout.String())
	}
	if rep.Program != "vetcase" || rep.Errors != 0 || rep.Warnings < 2 {
		t.Fatalf("report summary = %q/%d errors/%d warnings, want vetcase/0/>=2",
			rep.Program, rep.Errors, rep.Warnings)
	}
	checks := map[string]bool{}
	for _, d := range rep.Diagnostics {
		checks[d.Check] = true
		if d.Check == "affinity/certificate" {
			if d.Severity != "info" {
				t.Errorf("certificate severity %q, want info", d.Severity)
			}
			if d.Line <= 0 {
				t.Errorf("certificate diagnostic has no source line: %+v", d)
			}
			if len(d.Notes) == 0 {
				t.Errorf("certificate diagnostic has no derivation notes")
			}
		}
	}
	for _, want := range []string{"affinity/certificate", "lint/unchecked-map-miss", "lint/unused-global"} {
		if !checks[want] {
			t.Errorf("JSON report missing %s:\n%s", want, stdout.String())
		}
	}
}

// Command galliumctl drives the live control plane of a running
// galliumsim -serve deployment: it speaks the newline-delimited JSON
// protocol over the unix socket and applies typed reconfiguration
// operations — each one an atomic visibility flip in the running engine,
// with zero packet loss.
//
// Usage:
//
//	galliumctl -s /tmp/gallium.sock ping
//	galliumctl -s /tmp/gallium.sock stats
//	galliumctl -s /tmp/gallium.sock firewall-swap [-mb firewall] \
//	    10.0.0.1,93.184.216.34,34000,5001,tcp ...
//	galliumctl -s /tmp/gallium.sock firewall-swap -f rules.json
//	galliumctl -s /tmp/gallium.sock lb-pool [-mb l4lb] [-drain] \
//	    10.0.1.1=2,10.0.1.2=1,10.0.1.5=3
//	galliumctl -s /tmp/gallium.sock nat-repartition [-mb mazunat] \
//	    [-bases 0,16384,32768,49152]
//
// Stages of a chained pipeline are addressed by middlebox name (-mb) or
// index (-stage); single-middlebox deployments need neither.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gallium/internal/ctlplane"
)

func main() {
	sock := flag.String("s", "/tmp/gallium.sock", "control socket of the running galliumsim -serve")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*sock, args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "galliumctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: galliumctl [-s socket] <command> [flags] [args]

commands:
  ping                         liveness check
  stats                        live traffic and switch counters
  firewall-swap [rules...]     replace the firewall whitelist atomically
  lb-pool addr=weight,...      replace the LB backend pool (weights; -drain)
  nat-repartition              re-split the NAT port space across shards
  flow-table -capacity N       retune the flow-state lifecycle live
      [-tcp-syn 5s] [-tcp-est 5m] [-tcp-fin 10s] [-udp 30s] [-policy lru|none]
`)
}

// stageFlags registers the shared stage-addressing flags on a subcommand.
func stageFlags(fs *flag.FlagSet) (*int, *string) {
	stage := fs.Int("stage", 0, "pipeline stage index")
	mb := fs.String("mb", "", "pipeline stage by middlebox name (wins over -stage)")
	return stage, mb
}

func run(sock, cmd string, args []string) error {
	c, err := ctlplane.Dial(sock)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd {
	case "ping":
		if _, err := c.Do(ctlplane.Request{Op: ctlplane.OpPing}); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil

	case "stats":
		resp, err := c.Do(ctlplane.Request{Op: ctlplane.OpStats})
		if err != nil {
			return err
		}
		return printStats(resp.Stats)

	case "firewall-swap":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		stage, mb := stageFlags(fs)
		file := fs.String("f", "", "read the rule set from this JSON file (array of {src,dst,sport,dport,proto})")
		if err := fs.Parse(args); err != nil {
			return err
		}
		rules, err := parseRules(*file, fs.Args())
		if err != nil {
			return err
		}
		_, err = c.Do(ctlplane.Request{
			Op: ctlplane.OpFirewallSwap, Stage: *stage, StageName: *mb, Rules: rules,
		})
		if err != nil {
			return err
		}
		fmt.Printf("swapped firewall whitelist: %d rule(s)\n", len(rules))
		return nil

	case "lb-pool":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		stage, mb := stageFlags(fs)
		drain := fs.Bool("drain", false, "keep established connections on removed backends until natural teardown")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("lb-pool wants one addr=weight,... argument")
		}
		pool, err := parsePool(fs.Arg(0))
		if err != nil {
			return err
		}
		_, err = c.Do(ctlplane.Request{
			Op: ctlplane.OpLBPool, Stage: *stage, StageName: *mb,
			Backends: pool, Drain: *drain,
		})
		if err != nil {
			return err
		}
		mode := "purging stale connections"
		if *drain {
			mode = "draining"
		}
		fmt.Printf("replaced LB pool: %d backend(s), %s\n", len(pool), mode)
		return nil

	case "flow-table":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		capacity := fs.Int("capacity", 0, "engine-wide concurrent-flow limit (required, positive)")
		tcpSyn := fs.Duration("tcp-syn", 0, "TCP half-open timeout (0 = runtime default)")
		tcpEst := fs.Duration("tcp-est", 0, "TCP established timeout (0 = runtime default)")
		tcpFin := fs.Duration("tcp-fin", 0, "TCP closing timeout (0 = runtime default)")
		udp := fs.Duration("udp", 0, "UDP session timeout (0 = runtime default)")
		policy := fs.String("policy", "", `eviction policy: "lru" (default) or "none"`)
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("flow-table takes flags only, got %q", fs.Args())
		}
		ft := &ctlplane.FlowTableConfig{
			Capacity:         *capacity,
			TCPSynNs:         int64(*tcpSyn),
			TCPEstablishedNs: int64(*tcpEst),
			TCPFinNs:         int64(*tcpFin),
			UDPNs:            int64(*udp),
			EvictPolicy:      *policy,
		}
		if _, err := c.Do(ctlplane.Request{Op: ctlplane.OpFlowTable, FlowTable: ft}); err != nil {
			return err
		}
		fmt.Printf("retuned flow table: capacity %d\n", *capacity)
		return nil

	case "nat-repartition":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		stage, mb := stageFlags(fs)
		basesArg := fs.String("bases", "", "per-shard first external ports, comma-separated (default: even split)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		var bases []uint16
		if *basesArg != "" {
			for _, p := range strings.Split(*basesArg, ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 16)
				if err != nil {
					return fmt.Errorf("bad -bases entry %q: %v", p, err)
				}
				bases = append(bases, uint16(v))
			}
		}
		_, err = c.Do(ctlplane.Request{
			Op: ctlplane.OpNATRepartition, Stage: *stage, StageName: *mb, Bases: bases,
		})
		if err != nil {
			return err
		}
		if bases == nil {
			fmt.Println("repartitioned NAT port space: even split")
		} else {
			fmt.Printf("repartitioned NAT port space: bases %v\n", bases)
		}
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}

// parseRules reads the new whitelist from -f (JSON) or from positional
// "src,dst,sport,dport,proto" arguments (proto numeric or tcp/udp).
func parseRules(file string, args []string) ([]ctlplane.Rule, error) {
	if file != "" {
		if len(args) > 0 {
			return nil, fmt.Errorf("firewall-swap takes -f or inline rules, not both")
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var rules []ctlplane.Rule
		if err := json.Unmarshal(data, &rules); err != nil {
			return nil, fmt.Errorf("%s: %v", file, err)
		}
		return rules, nil
	}
	rules := make([]ctlplane.Rule, 0, len(args))
	for _, a := range args {
		parts := strings.Split(a, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("bad rule %q, want src,dst,sport,dport,proto", a)
		}
		sport, err := strconv.ParseUint(parts[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad rule %q: source port: %v", a, err)
		}
		dport, err := strconv.ParseUint(parts[3], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad rule %q: destination port: %v", a, err)
		}
		var proto uint64
		switch strings.ToLower(parts[4]) {
		case "tcp":
			proto = 6
		case "udp":
			proto = 17
		default:
			proto, err = strconv.ParseUint(parts[4], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("bad rule %q: protocol: %v", a, err)
			}
		}
		rules = append(rules, ctlplane.Rule{
			Src: parts[0], Dst: parts[1],
			Sport: uint16(sport), Dport: uint16(dport), Proto: uint8(proto),
		})
	}
	return rules, nil
}

// parsePool parses "addr=weight,addr=weight,..." (weight defaults to 1).
func parsePool(arg string) ([]ctlplane.PoolMember, error) {
	var pool []ctlplane.PoolMember
	for _, p := range strings.Split(arg, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		addr, weightStr, found := strings.Cut(p, "=")
		weight := 1
		if found {
			v, err := strconv.Atoi(weightStr)
			if err != nil {
				return nil, fmt.Errorf("bad backend %q: weight: %v", p, err)
			}
			weight = v
		}
		pool = append(pool, ctlplane.PoolMember{Addr: addr, Weight: weight})
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("empty backend pool")
	}
	return pool, nil
}

func printStats(st *ctlplane.StatsPayload) error {
	if st == nil {
		return fmt.Errorf("server returned no stats payload")
	}
	fmt.Printf("injected %d  delivered %d  mb-drops %d  queue-drops %d\n",
		st.Injected, st.Delivered, st.MBDrops, st.QueueDrops)
	fmt.Printf("fast path %d  slow path %d  workers %d  reconfigs %d  %.2f Mpps wall-clock\n",
		st.FastPath, st.SlowPath, st.Workers, st.Reconfigs, st.PPS/1e6)
	if st.FlowCapacity > 0 {
		fmt.Printf("flow table: occupancy %d/%d  peak %d  expired %d  evicted %d\n",
			st.FlowOccupancy, st.FlowCapacity, st.FlowPeak, st.FlowExpired, st.FlowEvicted)
	}
	for i, sg := range st.Stages {
		name := sg.Name
		if name == "" {
			name = fmt.Sprintf("stage %d", i)
		}
		fmt.Printf("  %s: fast %d  to-server %d  ctl-ops %d  flips %d  reconfigs %d  epoch %d\n",
			name, sg.FastPath, sg.ToServer, sg.CtlOps, sg.CtlFlips, sg.Reconfigs, sg.Epoch)
	}
	return nil
}
